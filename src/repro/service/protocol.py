"""Wire protocol: length-prefixed JSON frames plus a binary fast path.

**Version 1 (JSON)**: one frame is a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON encoding a single object.  The
format is symmetric (requests and responses use the same framing) and
deliberately tiny -- NVMe-oF it is not, but it carries the same shape of
traffic: small commands in, small completions out.

**Version 2 (binary)**: the hot operations (``read`` / ``write`` /
``get`` / ``put`` and their ok/error responses) additionally have a
compact fixed-header binary encoding (:class:`BinFrameCodec`).  A binary
frame starts with the magic byte :data:`BIN_MAGIC` (``0xB2``), which can
never open a valid JSON frame: as the high byte of a length prefix it
would advertise a ~3 GB body, far beyond the frame cap, so the two
framings coexist byte-unambiguously **on the same connection**.  The
wire layout is documented in ``docs/serving.md`` ("Protocol v2").

Negotiation is capability-based and per-frame symmetric: a server that
speaks the binary codec advertises ``"bin"`` in its ``hello`` response,
a client that saw the capability may then send hot ops in binary, and
the server answers each request *in the codec it arrived in*.  Anything
the binary codec cannot express (``scan`` items, ``stats`` payloads,
unusual field combinations) silently falls back to JSON -- v1-only
clients never see a binary byte.

Requests carry a ``type`` (``hello`` / ``ping`` / ``read`` / ``write`` /
``get`` / ``put`` / ``scan`` / ``stats``) and an optional client-chosen
``id`` the response echoes, which is what lets one connection pipeline
many requests.  Responses carry ``ok``; failures add ``error`` (a short
code such as ``BUSY`` or ``BAD_REQUEST``) and a human-readable
``message``.

The protocol is **versioned**: any JSON frame may carry ``"v": <int>``,
and the ``hello`` exchange lets a client learn the server's version and
capabilities before issuing traffic (see :data:`PROTOCOL_VERSION`,
:data:`SUPPORTED_VERSIONS` and :func:`hello_response`).  A frame
advertising a version the server does not speak is answered with a typed
``UNSUPPORTED_VERSION`` error -- a distinct code from ``BAD_REQUEST`` so
clients can tell "upgrade me" from "you sent garbage".  Frames without
``v`` are treated as version 1 traffic (the pre-versioning wire format
is identical); binary frames are version 2 by construction and carry no
version field.

The sans-io :class:`FrameDecoder` is the reference implementation of the
receive side; :func:`read_frame` adapts it to asyncio streams, and
:class:`FrameSplitter` is the zero-copy variant relays use to cut a byte
stream at frame boundaries without decoding the bodies.
"""

import json
import math
import struct
from typing import Any, Dict, List, Optional, Tuple

#: Frames above this are rejected outright -- values are capped at one
#: 4 KB page, so a megabyte frame is a protocol violation, not data.
#: (Must stay far below ``0xB2 << 24`` so a JSON length prefix can never
#: be mistaken for a binary magic byte.)
DEFAULT_MAX_FRAME_BYTES = 1 << 20

#: The newest wire-protocol version this implementation speaks.
#: Version 1 is the original length-prefixed JSON format plus the
#: ``hello`` exchange; version 2 adds the negotiated binary fast path.
PROTOCOL_VERSION = 2

#: Every version this implementation accepts on the wire.  Frames
#: without a ``v`` field are version-1 traffic by definition.
SUPPORTED_VERSIONS = (1, 2)

_LEN = struct.Struct(">I")

# Error codes the service emits.
BUSY = "BUSY"                    # shed by admission control; retry later
BAD_REQUEST = "BAD_REQUEST"      # malformed or unknown request
SHUTTING_DOWN = "SHUTTING_DOWN"  # server is draining; connection will close
TIMEOUT = "TIMEOUT"              # the simulated request missed its deadline
INTERNAL = "INTERNAL"            # unexpected server-side failure
UNSUPPORTED_VERSION = "UNSUPPORTED_VERSION"  # frame's v is not spoken here
WRONG_SHARD = "WRONG_SHARD"      # request pinned a stale ring epoch; re-hello


class FrameError(Exception):
    """A protocol violation on the wire."""


class FrameTooLarge(FrameError):
    """The advertised frame length exceeds the configured maximum."""


class TruncatedFrame(FrameError):
    """The peer closed the connection mid-frame."""


class UnencodableFrame(Exception):
    """A message the binary codec cannot express (callers fall back to
    JSON).  Deliberately *not* a :class:`FrameError`: nothing was wrong
    on the wire."""


def encode_frame(obj: Dict[str, Any]) -> bytes:
    """Serialise one message to its on-wire JSON (v1) form."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    return _LEN.pack(len(body)) + body


# ---------------------------------------------------------------------------
# The binary codec (protocol v2).
# ---------------------------------------------------------------------------

#: First byte of every binary frame.  ``0xB2`` ("Binary, v2") as the
#: high byte of a JSON length prefix would mean a ~3 GB body -- always
#: over the frame cap -- so the byte unambiguously marks the framing.
BIN_MAGIC = 0xB2

# Request opcodes (client -> server).
OP_READ = 0x01
OP_WRITE = 0x02
OP_GET = 0x03
OP_PUT = 0x04
# Response opcodes (server -> client).
OP_OK = 0x81
OP_ERR = 0x82

#: Frame header: magic, opcode, body length, request id.  The id lives
#: in the header so relays can match responses to requests without
#: touching the body.
_BIN_HEADER = struct.Struct(">BBHI")
#: The header minus the magic byte (for unpack_from at offset+1).
_BIN_HEADER_TAIL = struct.Struct(">BHI")
BIN_HEADER_BYTES = _BIN_HEADER.size  # 8

_RW_FIXED = struct.Struct(">II")     # pair, lpn
_U16 = struct.Struct(">H")
_F64 = struct.Struct(">d")

# Flag bits of the OP_OK response body, in field order.
_OK_LATENCY = 0x01      # latency_us: f64
_OK_STORAGE = 0x02      # storage_us: f64, NaN encodes None
_OK_REPLICAS = 0x04     # replicas: u8
_OK_VALUE = 0x08        # value: u8 is-null, then u16 length + bytes
_OK_FOUND = 0x10        # found: u8 bool
_OK_RACK = 0x20         # rack: u16
_OK_CROSS_RACK = 0x40   # cross_rack (present means True)

#: Error codes by binary index.  Appending is wire-compatible;
#: reordering is not.
_ERR_CODES = (BUSY, BAD_REQUEST, SHUTTING_DOWN, TIMEOUT, INTERNAL,
              UNSUPPORTED_VERSION, WRONG_SHARD)
_ERR_INDEX = {code: i for i, code in enumerate(_ERR_CODES)}

_REQUEST_OPS = {"read": OP_READ, "write": OP_WRITE,
                "get": OP_GET, "put": OP_PUT}


def _need_u32(obj: Dict[str, Any], key: str) -> int:
    value = obj.get(key)
    if type(value) is not int or not 0 <= value < (1 << 32):
        raise UnencodableFrame(f"{key!r} is not a u32")
    return value


def _opt_str(obj: Dict[str, Any], key: str, limit: int) -> bytes:
    value = obj.get(key)
    if value is None:
        return b""
    if type(value) is not str:
        raise UnencodableFrame(f"{key!r} is not a string")
    raw = value.encode("utf-8")
    if len(raw) > limit:
        raise UnencodableFrame(f"{key!r} exceeds {limit} encoded bytes")
    return raw


def _need_f64(value: Any, key: str) -> float:
    if type(value) is bool or not isinstance(value, (int, float)):
        raise UnencodableFrame(f"{key!r} is not a number")
    value = float(value)
    if not math.isfinite(value):
        raise UnencodableFrame(f"{key!r} is not finite")
    return value


class BinFrameCodec:
    """The protocol-v2 binary codec for the hot request/response shapes.

    :meth:`encode` is **strict and canonical**: a message round-trips
    byte-exactly (``encode(decode(frame)) == frame``) and any message
    carrying a field, type, or range the format cannot express raises
    :class:`UnencodableFrame` so the caller falls back to JSON.  That
    strictness is what lets the fuzz suite prove JSON/binary decoder
    equivalence instead of best-effort similarity.
    """

    # ------------------------------------------------------------- encoding

    def encode(self, obj: Dict[str, Any]) -> bytes:
        """One message to binary wire form, or :class:`UnencodableFrame`."""
        ok = obj.get("ok")
        if ok is None:
            rtype = obj.get("type")
            opcode = _REQUEST_OPS.get(rtype)
            if opcode is None:
                raise UnencodableFrame(f"no binary opcode for {rtype!r}")
            return self._encode_request(opcode, obj)
        if ok is True:
            return self._encode_ok(obj)
        if ok is False:
            return self._encode_err(obj)
        raise UnencodableFrame("'ok' is neither absent nor a bool")

    def try_encode(self, obj: Dict[str, Any]) -> Optional[bytes]:
        """:meth:`encode`, with ``None`` instead of the exception."""
        try:
            return self.encode(obj)
        except UnencodableFrame:
            return None

    def _frame(self, opcode: int, request_id: int, body: bytes) -> bytes:
        if len(body) > 0xFFFF:
            raise UnencodableFrame("body exceeds the u16 length field")
        return _BIN_HEADER.pack(BIN_MAGIC, opcode, len(body), request_id) + body

    def _encode_request(self, opcode: int, obj: Dict[str, Any]) -> bytes:
        request_id = _need_u32(obj, "id")
        allowed = {"type", "id", "client"}
        client = _opt_str(obj, "client", 255)
        if opcode in (OP_READ, OP_WRITE):
            allowed |= {"pair", "lpn"}
            flags = 0
            if opcode == OP_READ:
                allowed.add("replica")
                replica = obj.get("replica")
                if replica is True:
                    flags = 1
                elif replica is not None:
                    raise UnencodableFrame("'replica' must be absent or True")
                body = (_RW_FIXED.pack(_need_u32(obj, "pair"),
                                       _need_u32(obj, "lpn"))
                        + bytes((flags, len(client))) + client)
            else:
                body = (_RW_FIXED.pack(_need_u32(obj, "pair"),
                                       _need_u32(obj, "lpn"))
                        + bytes((len(client),)) + client)
        elif opcode == OP_GET:
            allowed.add("key")
            key = self._need_text(obj, "key")
            body = (_U16.pack(len(key)) + key
                    + bytes((len(client),)) + client)
        else:  # OP_PUT
            allowed |= {"key", "value"}
            key = self._need_text(obj, "key")
            value = self._need_text(obj, "value")
            body = (_U16.pack(len(key)) + key + _U16.pack(len(value)) + value
                    + bytes((len(client),)) + client)
        if not set(obj) <= allowed:
            raise UnencodableFrame(
                f"fields {sorted(set(obj) - allowed)} have no binary form"
            )
        return self._frame(opcode, request_id, body)

    def _need_text(self, obj: Dict[str, Any], key: str) -> bytes:
        value = obj.get(key)
        if type(value) is not str:
            raise UnencodableFrame(f"{key!r} is not a string")
        raw = value.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise UnencodableFrame(f"{key!r} exceeds the u16 length field")
        return raw

    def _encode_ok(self, obj: Dict[str, Any]) -> bytes:
        allowed = {"ok", "id", "replicas", "value", "found", "latency_us",
                   "storage_us", "rack", "cross_rack"}
        if not set(obj) <= allowed:
            raise UnencodableFrame(
                f"fields {sorted(set(obj) - allowed)} have no binary form"
            )
        request_id = _need_u32(obj, "id")
        flags = 0
        parts = [b""]  # slot 0 holds the flags byte, filled last
        if "latency_us" in obj:
            flags |= _OK_LATENCY
            parts.append(_F64.pack(_need_f64(obj["latency_us"], "latency_us")))
        if "storage_us" in obj:
            flags |= _OK_STORAGE
            storage = obj["storage_us"]
            parts.append(_F64.pack(
                math.nan if storage is None
                else _need_f64(storage, "storage_us")
            ))
        if "replicas" in obj:
            replicas = obj["replicas"]
            if type(replicas) is not int or not 0 <= replicas <= 255:
                raise UnencodableFrame("'replicas' is not a u8")
            flags |= _OK_REPLICAS
            parts.append(bytes((replicas,)))
        if "value" in obj:
            flags |= _OK_VALUE
            value = obj["value"]
            if value is None:
                parts.append(b"\x01")
            else:
                raw = self._need_text(obj, "value")
                parts.append(b"\x00" + _U16.pack(len(raw)) + raw)
        if "found" in obj:
            found = obj["found"]
            if type(found) is not bool:
                raise UnencodableFrame("'found' is not a bool")
            flags |= _OK_FOUND
            parts.append(b"\x01" if found else b"\x00")
        if "rack" in obj:
            rack = obj["rack"]
            if type(rack) is not int or not 0 <= rack <= 0xFFFF:
                raise UnencodableFrame("'rack' is not a u16")
            flags |= _OK_RACK
            parts.append(_U16.pack(rack))
        if "cross_rack" in obj:
            if obj["cross_rack"] is not True:
                raise UnencodableFrame("'cross_rack' must be absent or True")
            flags |= _OK_CROSS_RACK
        parts[0] = bytes((flags,))
        return self._frame(OP_OK, request_id, b"".join(parts))

    def _encode_err(self, obj: Dict[str, Any]) -> bytes:
        allowed = {"ok", "id", "error", "message"}
        if not set(obj) <= allowed:
            raise UnencodableFrame(
                f"fields {sorted(set(obj) - allowed)} have no binary form"
            )
        request_id = _need_u32(obj, "id")
        index = _ERR_INDEX.get(obj.get("error"))
        if index is None:
            raise UnencodableFrame(
                f"error code {obj.get('error')!r} has no binary index"
            )
        message = obj.get("message", "")
        if type(message) is not str:
            raise UnencodableFrame("'message' is not a string")
        raw = message.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise UnencodableFrame("'message' exceeds the u16 length field")
        body = bytes((index,)) + _U16.pack(len(raw)) + raw
        return self._frame(OP_ERR, request_id, body)

    # ------------------------------------------------------------- decoding

    def decode_body(self, opcode: int, request_id: int,
                    body: bytes) -> Dict[str, Any]:
        """One validated binary body back to its canonical message dict.

        Raises :class:`FrameError` for anything malformed -- wrong
        lengths, trailing bytes, invalid UTF-8, unknown error indices --
        never anything outside the frame-error taxonomy.
        """
        try:
            if opcode == OP_READ or opcode == OP_WRITE:
                return self._decode_rw(opcode, request_id, body)
            if opcode == OP_GET or opcode == OP_PUT:
                return self._decode_kv(opcode, request_id, body)
            if opcode == OP_OK:
                return self._decode_ok(request_id, body)
            if opcode == OP_ERR:
                return self._decode_err(request_id, body)
        except FrameError:
            raise
        except (struct.error, UnicodeDecodeError, IndexError,
                ValueError) as exc:
            raise FrameError(f"malformed binary body: {exc}") from exc
        raise FrameError(f"unknown binary opcode 0x{opcode:02x}")

    def _text(self, view: bytes) -> str:
        return bytes(view).decode("utf-8")

    def _decode_rw(self, opcode: int, request_id: int,
                   body: bytes) -> Dict[str, Any]:
        pair, lpn = _RW_FIXED.unpack_from(body)
        pos = _RW_FIXED.size
        out: Dict[str, Any]
        if opcode == OP_READ:
            flags = body[pos]
            pos += 1
            if flags & ~1:
                raise FrameError(f"unknown read flags 0x{flags:02x}")
            out = {"type": "read", "pair": pair, "lpn": lpn}
            if flags & 1:
                out["replica"] = True
        else:
            out = {"type": "write", "pair": pair, "lpn": lpn}
        out["id"] = request_id
        clen = body[pos]
        pos += 1
        if len(body) != pos + clen:
            raise FrameError("binary request body length mismatch")
        if clen:
            out["client"] = self._text(body[pos:pos + clen])
        return out

    def _decode_kv(self, opcode: int, request_id: int,
                   body: bytes) -> Dict[str, Any]:
        (klen,) = _U16.unpack_from(body)
        pos = 2
        key = self._text(body[pos:pos + klen])
        if len(body) < pos + klen:
            raise FrameError("binary request body length mismatch")
        pos += klen
        if opcode == OP_GET:
            out = {"type": "get", "key": key}
        else:
            (vlen,) = _U16.unpack_from(body, pos)
            pos += 2
            if len(body) < pos + vlen:
                raise FrameError("binary request body length mismatch")
            out = {"type": "put", "key": key,
                   "value": self._text(body[pos:pos + vlen])}
            pos += vlen
        out["id"] = request_id
        clen = body[pos]
        pos += 1
        if len(body) != pos + clen:
            raise FrameError("binary request body length mismatch")
        if clen:
            out["client"] = self._text(body[pos:pos + clen])
        return out

    def _decode_ok(self, request_id: int,
                   body: bytes) -> Dict[str, Any]:
        flags = body[0]
        if flags & ~0x7F:
            raise FrameError(f"unknown ok-response flags 0x{flags:02x}")
        pos = 1
        out: Dict[str, Any] = {"ok": True, "id": request_id}
        latency = storage = None
        if flags & _OK_LATENCY:
            (latency,) = _F64.unpack_from(body, pos)
            pos += 8
        if flags & _OK_STORAGE:
            (storage,) = _F64.unpack_from(body, pos)
            pos += 8
        if flags & _OK_REPLICAS:
            out["replicas"] = body[pos]
            pos += 1
        if flags & _OK_VALUE:
            is_null = body[pos]
            pos += 1
            if is_null > 1:
                raise FrameError("value null marker out of range")
            if is_null:
                out["value"] = None
            else:
                (vlen,) = _U16.unpack_from(body, pos)
                pos += 2
                if len(body) < pos + vlen:
                    raise FrameError("binary response body length mismatch")
                out["value"] = self._text(body[pos:pos + vlen])
                pos += vlen
        if flags & _OK_FOUND:
            found = body[pos]
            pos += 1
            if found > 1:
                raise FrameError("found marker out of range")
            out["found"] = bool(found)
        if flags & _OK_LATENCY:
            out["latency_us"] = latency
        if flags & _OK_STORAGE:
            out["storage_us"] = None if math.isnan(storage) else storage
        if flags & _OK_RACK:
            (out["rack"],) = _U16.unpack_from(body, pos)
            pos += 2
        if flags & _OK_CROSS_RACK:
            out["cross_rack"] = True
        if len(body) != pos:
            raise FrameError("binary response body length mismatch")
        return out

    def _decode_err(self, request_id: int,
                    body: bytes) -> Dict[str, Any]:
        index = body[0]
        if index >= len(_ERR_CODES):
            raise FrameError(f"unknown binary error index {index}")
        (mlen,) = _U16.unpack_from(body, 1)
        if len(body) != 3 + mlen:
            raise FrameError("binary response body length mismatch")
        out: Dict[str, Any] = {"ok": False, "error": _ERR_CODES[index]}
        if mlen:
            out["message"] = self._text(body[3:3 + mlen])
        out["id"] = request_id
        return out


#: The shared codec instance (stateless, so one is plenty).
BIN_CODEC = BinFrameCodec()


def encode_frame_as(obj: Dict[str, Any], binary: bool) -> bytes:
    """Encode one message, preferring binary when asked and possible.

    With ``binary`` the hot shapes go out in protocol-v2 binary; any
    message the codec cannot express falls back to JSON (the peer's
    unified decoder accepts both, so mixing is always safe).
    """
    if binary:
        frame = BIN_CODEC.try_encode(obj)
        if frame is not None:
            return frame
    return encode_frame(obj)


# ---------------------------------------------------------------------------
# Stream decoding.
# ---------------------------------------------------------------------------

#: Compact the receive buffer only after this many consumed bytes --
#: amortized O(1) per byte instead of one memmove per frame.
_COMPACT_BYTES = 1 << 16

_VALID_OPCODES = frozenset((OP_READ, OP_WRITE, OP_GET, OP_PUT, OP_OK, OP_ERR))


class FrameDecoder:
    """Incremental decoder: feed bytes in, take decoded objects out.

    Accepts **both** framings interleaved on one stream -- each frame
    self-describes via its first byte (:data:`BIN_MAGIC` or a JSON
    length prefix).  :meth:`feed_tagged` additionally reports which
    codec each message arrived in, which is how the server answers in
    kind.

    The decoder never buffers more than one oversized length prefix --
    it raises :class:`FrameTooLarge` as soon as the prefix arrives, so a
    hostile peer cannot make the server allocate the advertised body.
    Internally the buffer is consumed through a moving offset with
    amortized compaction, so a large feed of many small frames costs
    O(bytes), not O(frames x bytes).
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._pos = 0

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Consume bytes; return every complete message they finish."""
        return [message for message, _ in self.feed_tagged(data)]

    def feed_tagged(self, data: bytes) -> List[Tuple[Dict[str, Any], bool]]:
        """Like :meth:`feed`, as ``(message, arrived_in_binary)`` pairs."""
        buffer = self._buffer
        buffer += data
        out: List[Tuple[Dict[str, Any], bool]] = []
        pos = self._pos
        end = len(buffer)
        try:
            while pos < end:
                if buffer[pos] == BIN_MAGIC:
                    if end - pos < BIN_HEADER_BYTES:
                        break
                    opcode, body_len, request_id = (
                        _BIN_HEADER_TAIL.unpack_from(buffer, pos + 1)
                    )
                    if body_len > self.max_frame_bytes:
                        raise FrameTooLarge(
                            f"frame of {body_len} bytes exceeds the "
                            f"{self.max_frame_bytes}-byte limit"
                        )
                    if opcode not in _VALID_OPCODES:
                        raise FrameError(
                            f"unknown binary opcode 0x{opcode:02x}"
                        )
                    total = BIN_HEADER_BYTES + body_len
                    if end - pos < total:
                        break
                    body = bytes(memoryview(buffer)[
                        pos + BIN_HEADER_BYTES: pos + total])
                    out.append((
                        BIN_CODEC.decode_body(opcode, request_id, body),
                        True,
                    ))
                    pos += total
                else:
                    if end - pos < _LEN.size:
                        break
                    (need,) = _LEN.unpack_from(buffer, pos)
                    if need > self.max_frame_bytes:
                        raise FrameTooLarge(
                            f"frame of {need} bytes exceeds the "
                            f"{self.max_frame_bytes}-byte limit"
                        )
                    if end - pos < _LEN.size + need:
                        break
                    start = pos + _LEN.size
                    body_bytes = bytes(memoryview(buffer)[start:start + need])
                    try:
                        obj = json.loads(body_bytes)
                    except (UnicodeDecodeError, ValueError) as exc:
                        raise FrameError(
                            f"frame body is not valid JSON: {exc}"
                        ) from exc
                    if not isinstance(obj, dict):
                        raise FrameError(
                            f"frame must encode a JSON object, "
                            f"got {type(obj).__name__}"
                        )
                    out.append((obj, False))
                    pos += _LEN.size + need
        finally:
            self._pos = pos
            self._compact()
        return out

    def _compact(self) -> None:
        pos = self._pos
        if pos == 0:
            return
        buffer = self._buffer
        if pos == len(buffer):
            buffer.clear()
            self._pos = 0
        elif pos >= _COMPACT_BYTES and pos >= (len(buffer) >> 1):
            del buffer[:pos]
            self._pos = 0

    def close(self) -> None:
        """Signal EOF: leftover bytes mean the peer died mid-frame."""
        pending = len(self._buffer) - self._pos
        if pending:
            raise TruncatedFrame(
                f"connection closed mid-frame ({pending} bytes pending)"
            )


class FrameSplitter:
    """Cut a byte stream at frame boundaries *without* decoding bodies.

    Relays (the sharded :class:`~repro.service.router.ShardProxy`) splice
    backend responses through to clients byte-for-byte; all they need is
    frame granularity so locally generated responses never interleave
    inside a relayed frame.  The splitter understands both framings --
    JSON length prefixes and :data:`BIN_MAGIC` binary headers -- and
    enforces the same length rules as :class:`FrameDecoder` (oversized
    prefixes raise :class:`FrameTooLarge` before the body is buffered)
    but leaves every body untouched.

    Frames are returned as **memoryviews into the fed chunk** whenever a
    frame arrives whole, so the common relay path is zero-copy: the
    bytes travel socket -> splitter view -> socket without an
    intermediate copy.  Only frames that straddle chunk boundaries are
    stitched in an internal buffer (and that buffer is abandoned, never
    mutated, once views over it escape).
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List["memoryview"]:
        """Consume bytes; return every complete frame (header included)."""
        if self._buffer:
            # A partial frame is pending: stitch, scan, and keep only the
            # new tail in a *fresh* buffer so escaped views stay valid.
            buffer = self._buffer
            buffer += data
            source: Any = buffer
        else:
            source = data
        view = memoryview(source)
        out, consumed = self._scan(view)
        tail = bytearray(view[consumed:]) if consumed < len(view) else (
            bytearray()
        )
        self._buffer = tail
        return out

    def _scan(self, view: "memoryview") -> Tuple[List["memoryview"], int]:
        out: List["memoryview"] = []
        pos = 0
        end = len(view)
        while pos < end:
            if view[pos] == BIN_MAGIC:
                if end - pos < BIN_HEADER_BYTES:
                    break
                opcode = view[pos + 1]
                (body_len,) = _U16.unpack_from(view, pos + 2)
                if body_len > self.max_frame_bytes:
                    raise FrameTooLarge(
                        f"frame of {body_len} bytes exceeds the "
                        f"{self.max_frame_bytes}-byte limit"
                    )
                if opcode not in _VALID_OPCODES:
                    raise FrameError(
                        f"unknown binary opcode 0x{opcode:02x}"
                    )
                total = BIN_HEADER_BYTES + body_len
            else:
                if end - pos < _LEN.size:
                    break
                (need,) = _LEN.unpack_from(view, pos)
                if need > self.max_frame_bytes:
                    raise FrameTooLarge(
                        f"frame of {need} bytes exceeds the "
                        f"{self.max_frame_bytes}-byte limit"
                    )
                total = _LEN.size + need
            if end - pos < total:
                break
            out.append(view[pos:pos + total])
            pos += total
        return out, pos

    def close(self) -> None:
        """Signal EOF: leftover bytes mean the peer died mid-frame."""
        if self._buffer:
            raise TruncatedFrame(
                f"stream ended mid-frame ({len(self._buffer)} bytes pending)"
            )


# ---------------------------------------------------------------------------
# Frame peeking (relay helpers: read routing facts without a full decode).
# ---------------------------------------------------------------------------


def frame_is_binary(frame: bytes) -> bool:
    """True when a complete frame is in the binary (v2) framing."""
    return len(frame) > 0 and frame[0] == BIN_MAGIC


def frame_opcode(frame: bytes) -> Optional[int]:
    """The binary opcode of a complete frame, or ``None`` for JSON."""
    if not frame_is_binary(frame):
        return None
    return frame[1]


def frame_request_id(frame: bytes) -> Any:
    """The ``id`` a complete frame carries (``None`` when it has none).

    Binary frames give it up from the fixed header; JSON frames pay one
    parse.  Raises :class:`FrameError` for malformed JSON bodies.
    """
    if frame_is_binary(frame):
        return _BIN_HEADER_TAIL.unpack_from(frame, 1)[2]
    try:
        obj = json.loads(bytes(frame[_LEN.size:]))
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        return None
    return obj.get("id")


def bin_frame_route(frame: bytes) -> Optional[Tuple[str, Any]]:
    """The routing fact of a binary request frame, without a decode.

    Returns ``("pair", global_pair)`` for read/write, ``("key", key)``
    for get/put (and scan has no binary form), ``None`` for anything
    else.  Raises :class:`FrameError` when the frame is too short to
    hold the advertised field.
    """
    if not frame_is_binary(frame):
        return None
    opcode = frame[1]
    try:
        if opcode in (OP_READ, OP_WRITE):
            (pair,) = struct.unpack_from(">I", frame, BIN_HEADER_BYTES)
            return ("pair", pair)
        if opcode in (OP_GET, OP_PUT):
            (klen,) = _U16.unpack_from(frame, BIN_HEADER_BYTES)
            start = BIN_HEADER_BYTES + 2
            key = bytes(frame[start:start + klen])
            if len(key) != klen:
                raise FrameError("binary request body length mismatch")
            return ("key", key.decode("utf-8"))
    except (struct.error, UnicodeDecodeError) as exc:
        raise FrameError(f"malformed binary body: {exc}") from exc
    return None


def rewrite_bin_pair(frame: bytes, local_pair: int) -> bytes:
    """A copy of a binary read/write frame with its pair field replaced.

    The pair index sits at a fixed offset, so a relay translating global
    to rack-local pair indices patches 4 bytes instead of re-encoding.
    """
    out = bytearray(frame)
    struct.pack_into(">I", out, BIN_HEADER_BYTES, local_pair)
    return bytes(out)


# ---------------------------------------------------------------------------
# Versioning and the request/response vocabulary.
# ---------------------------------------------------------------------------


def check_version(request: Dict[str, Any]) -> Optional[int]:
    """Return the unsupported version in a request, or ``None`` if fine.

    Frames without ``v`` are version-1 traffic by definition; a non-
    integer ``v`` is "a version we do not speak", not a malformed frame
    (future versions may well widen the type).
    """
    version = request.get("v")
    if version is None or version in SUPPORTED_VERSIONS:
        return None
    return version


def hello_response(request_id: Optional[Any] = None,
                   capabilities: Optional[List[str]] = None,
                   **fields: Any) -> Dict[str, Any]:
    """The server half of the HELLO exchange: version + capabilities."""
    return ok_response(
        request_id,
        v=PROTOCOL_VERSION,
        capabilities=sorted(capabilities or []),
        **fields,
    )


async def read_frame(reader, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
                     ) -> Optional[Dict[str, Any]]:
    """Read one frame from an asyncio stream; ``None`` on clean EOF.

    Understands both framings (the first byte decides, exactly as in
    :class:`FrameDecoder`).
    """
    import asyncio

    try:
        first = await reader.readexactly(1)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TruncatedFrame("connection closed mid-length-prefix") from exc
    try:
        if first[0] == BIN_MAGIC:
            rest = await reader.readexactly(BIN_HEADER_BYTES - 1)
            opcode, body_len, request_id = _BIN_HEADER_TAIL.unpack(rest)
            if body_len > max_frame_bytes:
                raise FrameTooLarge(
                    f"frame of {body_len} bytes exceeds the "
                    f"{max_frame_bytes}-byte limit"
                )
            body = await reader.readexactly(body_len)
            return BIN_CODEC.decode_body(opcode, request_id, body)
        prefix = first + await reader.readexactly(_LEN.size - 1)
    except asyncio.IncompleteReadError as exc:
        raise TruncatedFrame("connection closed mid-length-prefix") from exc
    (length,) = _LEN.unpack(prefix)
    if length > max_frame_bytes:
        raise FrameTooLarge(
            f"frame of {length} bytes exceeds the {max_frame_bytes}-byte limit"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TruncatedFrame(
            f"connection closed mid-frame ({len(exc.partial)}/{length} bytes)"
        ) from exc
    try:
        obj = json.loads(body)
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise FrameError(
            f"frame must encode a JSON object, got {type(obj).__name__}"
        )
    return obj


def write_frame(writer, obj: Dict[str, Any]) -> None:
    """Queue one frame on an asyncio stream writer (caller drains)."""
    writer.write(encode_frame(obj))


def ok_response(request_id: Optional[Any] = None, **fields: Any) -> Dict[str, Any]:
    """A success response, echoing the request id when one was given."""
    out: Dict[str, Any] = {"ok": True}
    if request_id is not None:
        out["id"] = request_id
    out.update(fields)
    return out


def error_response(code: str, message: str = "",
                   request_id: Optional[Any] = None) -> Dict[str, Any]:
    """A failure response with a short machine-readable code."""
    out: Dict[str, Any] = {"ok": False, "error": code}
    if message:
        out["message"] = message
    if request_id is not None:
        out["id"] = request_id
    return out
