"""Wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding a single object.  The format is symmetric
(requests and responses use the same framing) and deliberately tiny --
NVMe-oF it is not, but it carries the same shape of traffic: small
commands in, small completions out.

Requests carry a ``type`` (``hello`` / ``ping`` / ``read`` / ``write`` /
``get`` / ``put`` / ``scan`` / ``stats``) and an optional client-chosen
``id`` the response echoes, which is what lets one connection pipeline
many requests.  Responses carry ``ok``; failures add ``error`` (a short
code such as ``BUSY`` or ``BAD_REQUEST``) and a human-readable
``message``.

The protocol is **versioned**: any frame may carry ``"v": <int>``, and
the ``hello`` exchange lets a client learn the server's version and
capabilities before issuing traffic (see :data:`PROTOCOL_VERSION` and
:func:`hello_response`).  A frame advertising a version the server does
not speak is answered with a typed ``UNSUPPORTED_VERSION`` error -- a
distinct code from ``BAD_REQUEST`` so clients can tell "upgrade me" from
"you sent garbage".  Frames without ``v`` are treated as version 1
traffic (the pre-versioning wire format is identical).

The sans-io :class:`FrameDecoder` is the reference implementation of the
receive side; :func:`read_frame` adapts it to asyncio streams, and
:class:`FrameSplitter` is the zero-parse variant relays use to cut a
byte stream at frame boundaries without decoding the JSON bodies.
"""

import json
import struct
from typing import Any, Dict, List, Optional

#: Frames above this are rejected outright -- values are capped at one
#: 4 KB page, so a megabyte frame is a protocol violation, not data.
DEFAULT_MAX_FRAME_BYTES = 1 << 20

#: The wire-protocol version this implementation speaks.  Version 1 is
#: the original (unversioned) frame format plus the ``hello`` exchange;
#: frames without a ``v`` field are treated as version 1.
PROTOCOL_VERSION = 1

_LEN = struct.Struct(">I")

# Error codes the service emits.
BUSY = "BUSY"                    # shed by admission control; retry later
BAD_REQUEST = "BAD_REQUEST"      # malformed or unknown request
SHUTTING_DOWN = "SHUTTING_DOWN"  # server is draining; connection will close
TIMEOUT = "TIMEOUT"              # the simulated request missed its deadline
INTERNAL = "INTERNAL"            # unexpected server-side failure
UNSUPPORTED_VERSION = "UNSUPPORTED_VERSION"  # frame's v is not spoken here


class FrameError(Exception):
    """A protocol violation on the wire."""


class FrameTooLarge(FrameError):
    """The advertised frame length exceeds the configured maximum."""


class TruncatedFrame(FrameError):
    """The peer closed the connection mid-frame."""


def encode_frame(obj: Dict[str, Any]) -> bytes:
    """Serialise one message to its on-wire form."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    return _LEN.pack(len(body)) + body


class FrameDecoder:
    """Incremental decoder: feed bytes in, take decoded objects out.

    The decoder never buffers more than one oversized length prefix --
    it raises :class:`FrameTooLarge` as soon as the prefix arrives, so a
    hostile peer cannot make the server allocate the advertised body.
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._need: Optional[int] = None  # body length once the prefix parsed

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Consume bytes; return every complete message they finish."""
        self._buffer.extend(data)
        out: List[Dict[str, Any]] = []
        while True:
            if self._need is None:
                if len(self._buffer) < _LEN.size:
                    return out
                (self._need,) = _LEN.unpack_from(self._buffer)
                del self._buffer[: _LEN.size]
                if self._need > self.max_frame_bytes:
                    raise FrameTooLarge(
                        f"frame of {self._need} bytes exceeds the "
                        f"{self.max_frame_bytes}-byte limit"
                    )
            if len(self._buffer) < self._need:
                return out
            body = bytes(self._buffer[: self._need])
            del self._buffer[: self._need]
            self._need = None
            try:
                obj = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise FrameError(f"frame body is not valid JSON: {exc}") from exc
            if not isinstance(obj, dict):
                raise FrameError(
                    f"frame must encode a JSON object, got {type(obj).__name__}"
                )
            out.append(obj)

    def close(self) -> None:
        """Signal EOF: leftover bytes mean the peer died mid-frame."""
        if self._buffer or self._need is not None:
            raise TruncatedFrame(
                f"connection closed mid-frame ({len(self._buffer)} bytes of "
                f"{self._need if self._need is not None else 'header'} pending)"
            )


class FrameSplitter:
    """Cut a byte stream at frame boundaries *without* decoding bodies.

    Relays (the sharded :class:`~repro.service.router.ShardProxy`) splice
    backend responses through to clients byte-for-byte; all they need is
    frame granularity so locally generated responses never interleave
    inside a relayed frame.  The splitter enforces the same length-prefix
    rules as :class:`FrameDecoder` -- oversized prefixes raise
    :class:`FrameTooLarge` before the body is buffered -- but leaves the
    JSON untouched, so a relay costs a memcpy, not a parse.
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._need: Optional[int] = None

    def feed(self, data: bytes) -> List[bytes]:
        """Consume bytes; return every complete frame (prefix included)."""
        self._buffer.extend(data)
        out: List[bytes] = []
        while True:
            if self._need is None:
                if len(self._buffer) < _LEN.size:
                    return out
                (self._need,) = _LEN.unpack_from(self._buffer)
                if self._need > self.max_frame_bytes:
                    raise FrameTooLarge(
                        f"frame of {self._need} bytes exceeds the "
                        f"{self.max_frame_bytes}-byte limit"
                    )
            total = _LEN.size + self._need
            if len(self._buffer) < total:
                return out
            out.append(bytes(self._buffer[:total]))
            del self._buffer[:total]
            self._need = None

    def close(self) -> None:
        """Signal EOF: leftover bytes mean the peer died mid-frame."""
        if self._buffer:
            raise TruncatedFrame(
                f"stream ended mid-frame ({len(self._buffer)} bytes pending)"
            )


def check_version(request: Dict[str, Any]) -> Optional[int]:
    """Return the unsupported version in a request, or ``None`` if fine.

    Frames without ``v`` are version-1 traffic by definition; a non-
    integer ``v`` is "a version we do not speak", not a malformed frame
    (future versions may well widen the type).
    """
    version = request.get("v")
    if version is None or version == PROTOCOL_VERSION:
        return None
    return version


def hello_response(request_id: Optional[Any] = None,
                   capabilities: Optional[List[str]] = None,
                   **fields: Any) -> Dict[str, Any]:
    """The server half of the HELLO exchange: version + capabilities."""
    return ok_response(
        request_id,
        v=PROTOCOL_VERSION,
        capabilities=sorted(capabilities or []),
        **fields,
    )


async def read_frame(reader, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
                     ) -> Optional[Dict[str, Any]]:
    """Read one frame from an asyncio stream; ``None`` on clean EOF."""
    import asyncio

    try:
        prefix = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TruncatedFrame("connection closed mid-length-prefix") from exc
    (length,) = _LEN.unpack(prefix)
    if length > max_frame_bytes:
        raise FrameTooLarge(
            f"frame of {length} bytes exceeds the {max_frame_bytes}-byte limit"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TruncatedFrame(
            f"connection closed mid-frame ({len(exc.partial)}/{length} bytes)"
        ) from exc
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise FrameError(
            f"frame must encode a JSON object, got {type(obj).__name__}"
        )
    return obj


def write_frame(writer, obj: Dict[str, Any]) -> None:
    """Queue one frame on an asyncio stream writer (caller drains)."""
    writer.write(encode_frame(obj))


def ok_response(request_id: Optional[Any] = None, **fields: Any) -> Dict[str, Any]:
    """A success response, echoing the request id when one was given."""
    out: Dict[str, Any] = {"ok": True}
    if request_id is not None:
        out["id"] = request_id
    out.update(fields)
    return out


def error_response(code: str, message: str = "",
                   request_id: Optional[Any] = None) -> Dict[str, Any]:
    """A failure response with a short machine-readable code."""
    out: Dict[str, Any] = {"ok": False, "error": code}
    if message:
        out["message"] = message
    if request_id is not None:
        out["id"] = request_id
    return out
