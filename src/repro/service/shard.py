"""Shards: a consistent-hash ring and the per-rack unit it places onto.

The scale-out front-end (:mod:`repro.service.router`) is a classic
front-end/back-end split: N independent racks, each its own simulator,
switch, and admission controller, with placement decided by a **seeded
consistent-hash ring with virtual nodes**.  Seeded, because placement
must agree across processes and across restarts -- the ring hashes with
BLAKE2 over an explicit seed, never Python's per-process ``hash()``.

Virtual nodes smooth the split: with ``vnodes`` points per rack the
largest shard owns close to ``1/N`` of the key space, and adding a rack
steals roughly ``1/(N+1)`` of the keys from the incumbents instead of
half of one unlucky rack (the rebalance property is pinned by
``tests/test_ring.py``).
"""

import bisect
import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError
from repro.service.admission import AdmissionController
from repro.service.bridge import SimTimeBridge

#: Ring points per rack.  64 keeps the max/min shard-ownership ratio
#: under ~1.35 for small N while the ring stays a few hundred entries.
DEFAULT_VNODES = 64

#: Ring seed: placement is part of the deployment's identity, so the
#: default is fixed and explicit rather than derived from anything.
DEFAULT_RING_SEED = 17

#: The ring's position space: BLAKE2 digests truncated to 8 bytes.
RING_SPACE = 1 << 64


@dataclass(frozen=True)
class KeyRange:
    """One contiguous, non-wrapping slice of ring space changing owner.

    ``start`` is inclusive, ``end`` exclusive; wraparound slices are
    split before construction so ``start < end`` always holds.  ``src``
    is the owner under the old ring, ``dst`` under the new one -- the
    shard-to-shard move a membership change obliges.
    """

    start: int
    end: int
    src: int
    dst: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end <= RING_SPACE:
            raise ConfigError(
                f"bad key range [{self.start}, {self.end})"
            )
        if self.src == self.dst:
            raise ConfigError(
                f"range [{self.start}, {self.end}) does not move "
                f"(src == dst == {self.src})"
            )

    def contains(self, point: int) -> bool:
        return self.start <= point < self.end

    @property
    def span(self) -> int:
        return self.end - self.start


class HashRing:
    """A seeded consistent-hash ring over integer node ids."""

    def __init__(self, nodes: Iterable[int] = (), *,
                 vnodes: int = DEFAULT_VNODES,
                 seed: int = DEFAULT_RING_SEED) -> None:
        if vnodes < 1:
            raise ConfigError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self.seed = seed
        self._points: List[int] = []          # sorted ring positions
        self._owners: List[int] = []          # node owning each position
        self._nodes: Dict[int, List[int]] = {}  # node -> its positions
        for node in nodes:
            self.add_node(node)

    # ----------------------------------------------------------- membership

    def _point(self, label: str) -> int:
        digest = hashlib.blake2b(
            f"{self.seed}:{label}".encode("utf-8"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big")

    def add_node(self, node: int) -> None:
        node = int(node)
        if node in self._nodes:
            raise ConfigError(f"node {node} is already on the ring")
        positions = []
        for replica in range(self.vnodes):
            point = self._point(f"node:{node}:{replica}")
            idx = bisect.bisect(self._points, point)
            self._points.insert(idx, point)
            self._owners.insert(idx, node)
            positions.append(point)
        self._nodes[node] = positions

    def remove_node(self, node: int) -> None:
        node = int(node)
        positions = self._nodes.pop(node, None)
        if positions is None:
            raise ConfigError(f"node {node} is not on the ring")
        for point in positions:
            # Positions can collide across nodes in principle; remove the
            # entry that belongs to *this* node.
            idx = bisect.bisect_left(self._points, point)
            while self._owners[idx] != node or self._points[idx] != point:
                idx += 1
            del self._points[idx]
            del self._owners[idx]

    @property
    def nodes(self) -> List[int]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def copy(self) -> "HashRing":
        """An independent ring with the same seed, vnodes, and members."""
        return HashRing(self.nodes, vnodes=self.vnodes, seed=self.seed)

    def with_node(self, node: int) -> "HashRing":
        """A copy of this ring after ``node`` joins (self is untouched)."""
        ring = self.copy()
        ring.add_node(node)
        return ring

    def without_node(self, node: int) -> "HashRing":
        """A copy of this ring after ``node`` leaves (self is untouched)."""
        ring = self.copy()
        ring.remove_node(node)
        return ring

    # -------------------------------------------------------------- lookup

    def node_for(self, key: str) -> int:
        """The node owning ``key``: first ring point at or after its hash."""
        if not self._nodes:
            raise ConfigError("the ring has no nodes")
        point = self._point(f"key:{key}")
        idx = bisect.bisect(self._points, point)
        if idx == len(self._points):
            idx = 0
        return self._owners[idx]

    def preference(self, key: str, count: int = 2) -> List[int]:
        """The first ``count`` *distinct* nodes walking the ring from
        ``key`` -- position 0 is the owner, position 1 the cross-rack
        fallback, and so on (Dynamo's preference list)."""
        if not self._nodes:
            raise ConfigError("the ring has no nodes")
        count = min(count, len(self._nodes))
        point = self._point(f"key:{key}")
        idx = bisect.bisect(self._points, point)
        out: List[int] = []
        total = len(self._points)
        for step in range(total):
            owner = self._owners[(idx + step) % total]
            if owner not in out:
                out.append(owner)
                if len(out) == count:
                    break
        return out

    def point_for(self, key: str) -> int:
        """The ring position ``key`` hashes to -- the value
        :meth:`node_for` buckets, exposed so migration plans can test a
        key against a :class:`KeyRange` without re-deriving the hash."""
        return self._point(f"key:{key}")

    def owner_of_point(self, point: int) -> int:
        """The node owning an arbitrary ring position (first ring point
        strictly after ``point``, wrapping)."""
        if not self._nodes:
            raise ConfigError("the ring has no nodes")
        idx = bisect.bisect(self._points, point)
        if idx == len(self._points):
            idx = 0
        return self._owners[idx]

    # ---------------------------------------------------------- rebalancing

    @staticmethod
    def ranges_moving(old_ring: "HashRing",
                      new_ring: "HashRing") -> List["KeyRange"]:
        """The exact slices of ring space that change owner between two
        rings -- the work a membership change obliges.

        Both rings must share ``seed`` and ``vnodes`` (otherwise every
        point moves and the diff is meaningless).  The result is sorted
        by ``start``, non-overlapping, with adjacent same-``(src, dst)``
        slices coalesced; a key moves between the rings **iff** its
        :meth:`point_for` position falls inside one of the returned
        ranges.  Summing ``span`` over the result gives the moved
        fraction of ring space -- ~``1/(N+1)`` for a single add, which
        the rebalance property tests pin.
        """
        if old_ring.seed != new_ring.seed:
            raise ConfigError(
                f"rings disagree on seed ({old_ring.seed} vs "
                f"{new_ring.seed}); the movement diff is meaningless"
            )
        if old_ring.vnodes != new_ring.vnodes:
            raise ConfigError(
                f"rings disagree on vnodes ({old_ring.vnodes} vs "
                f"{new_ring.vnodes}); the movement diff is meaningless"
            )
        if not old_ring._nodes or not new_ring._nodes:
            raise ConfigError("cannot diff against an empty ring")
        boundaries = sorted(set(old_ring._points) | set(new_ring._points))
        # Ownership is constant on [b_j, b_{j+1}) -- no ring point of
        # either ring lies strictly inside -- so one representative
        # lookup per segment settles it.  The wrap segment
        # [b_last, 2^64) + [0, b_0) shares a single owner pair too.
        pieces: List[Tuple[int, int, int, int]] = []
        for j in range(len(boundaries) - 1):
            left, right = boundaries[j], boundaries[j + 1]
            src = old_ring.owner_of_point(left)
            dst = new_ring.owner_of_point(left)
            if src != dst:
                pieces.append((left, right, src, dst))
        last, first = boundaries[-1], boundaries[0]
        src = old_ring.owner_of_point(last)
        dst = new_ring.owner_of_point(last)
        if src != dst:
            if last < RING_SPACE:
                pieces.append((last, RING_SPACE, src, dst))
            if first > 0:
                pieces.insert(0, (0, first, src, dst))
        pieces.sort()
        merged: List[Tuple[int, int, int, int]] = []
        for piece in pieces:
            if merged and merged[-1][1] == piece[0] and \
                    merged[-1][2:] == piece[2:]:
                merged[-1] = (merged[-1][0], piece[1], piece[2], piece[3])
            else:
                merged.append(piece)
        return [KeyRange(*piece) for piece in merged]


class RackShard:
    """One rack behind the router: bridge + its own admission control.

    Each shard is a complete single-rack serving stack minus the TCP
    listener -- its own simulator, its own pump, its own queue-depth cap
    and token buckets.  Admission being per-shard is what makes a
    whole-rack outage shed *only* that shard's traffic instead of
    dragging the global cap down with zombie in-flight requests.
    """

    def __init__(self, index: int, bridge: SimTimeBridge,
                 admission: Optional[AdmissionController] = None) -> None:
        if index < 0:
            raise ConfigError(f"shard index must be >= 0, got {index}")
        self.index = index
        self.bridge = bridge
        self.admission = admission if admission is not None else (
            AdmissionController()
        )
        #: Raw reads this shard served because the owner's copies were
        #: both collecting (the receiving side of a cross-rack redirect).
        self.redirected_in = 0

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        await self.bridge.start()

    async def stop(self, drain: bool = True,
                   drain_timeout_s: float = 10.0) -> None:
        await self.bridge.stop(drain=drain, drain_timeout_s=drain_timeout_s)

    @property
    def inflight(self) -> int:
        return self.bridge.inflight

    @property
    def num_pairs(self) -> int:
        return len(self.bridge.rack.pairs)

    # -------------------------------------------------------------- GC view

    def gc_busy_pairs(self) -> Tuple[bool, ...]:
        """Per local pair: are *both* in-rack copies collecting right now?

        This is the truth the shard's own ToR switch holds (the same two
        table reads :meth:`MultiRackFabric.process_read` makes before it
        redirects out of rack); the router sees it only after the
        inter-switch sync delay.
        """
        switch = self.bridge.rack.switch
        out = []
        for pair in self.bridge.rack.pairs:
            primary_busy = switch.replica_table.gc_status(
                pair.primary.vssd_id) == 1
            replica_busy = switch.destination_table.gc_status(
                pair.replica.vssd_id) == 1
            out.append(primary_busy and replica_busy)
        return tuple(out)

    # ------------------------------------------------------------ reporting

    def stats_section(self) -> Dict[str, object]:
        """This shard's slice of the sharded stats payload (see
        :mod:`repro.service.schema`)."""
        payload = self.bridge.stats_payload()
        payload["admission"] = self.admission.stats()
        payload["redirected_in"] = float(self.redirected_in)
        return payload
