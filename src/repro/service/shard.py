"""Shards: a consistent-hash ring and the per-rack unit it places onto.

The scale-out front-end (:mod:`repro.service.router`) is a classic
front-end/back-end split: N independent racks, each its own simulator,
switch, and admission controller, with placement decided by a **seeded
consistent-hash ring with virtual nodes**.  Seeded, because placement
must agree across processes and across restarts -- the ring hashes with
BLAKE2 over an explicit seed, never Python's per-process ``hash()``.

Virtual nodes smooth the split: with ``vnodes`` points per rack the
largest shard owns close to ``1/N`` of the key space, and adding a rack
steals roughly ``1/(N+1)`` of the keys from the incumbents instead of
half of one unlucky rack (the rebalance property is pinned by
``tests/test_ring.py``).
"""

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError
from repro.service.admission import AdmissionController
from repro.service.bridge import SimTimeBridge

#: Ring points per rack.  64 keeps the max/min shard-ownership ratio
#: under ~1.35 for small N while the ring stays a few hundred entries.
DEFAULT_VNODES = 64

#: Ring seed: placement is part of the deployment's identity, so the
#: default is fixed and explicit rather than derived from anything.
DEFAULT_RING_SEED = 17


class HashRing:
    """A seeded consistent-hash ring over integer node ids."""

    def __init__(self, nodes: Iterable[int] = (), *,
                 vnodes: int = DEFAULT_VNODES,
                 seed: int = DEFAULT_RING_SEED) -> None:
        if vnodes < 1:
            raise ConfigError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self.seed = seed
        self._points: List[int] = []          # sorted ring positions
        self._owners: List[int] = []          # node owning each position
        self._nodes: Dict[int, List[int]] = {}  # node -> its positions
        for node in nodes:
            self.add_node(node)

    # ----------------------------------------------------------- membership

    def _point(self, label: str) -> int:
        digest = hashlib.blake2b(
            f"{self.seed}:{label}".encode("utf-8"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big")

    def add_node(self, node: int) -> None:
        node = int(node)
        if node in self._nodes:
            raise ConfigError(f"node {node} is already on the ring")
        positions = []
        for replica in range(self.vnodes):
            point = self._point(f"node:{node}:{replica}")
            idx = bisect.bisect(self._points, point)
            self._points.insert(idx, point)
            self._owners.insert(idx, node)
            positions.append(point)
        self._nodes[node] = positions

    def remove_node(self, node: int) -> None:
        node = int(node)
        positions = self._nodes.pop(node, None)
        if positions is None:
            raise ConfigError(f"node {node} is not on the ring")
        for point in positions:
            # Positions can collide across nodes in principle; remove the
            # entry that belongs to *this* node.
            idx = bisect.bisect_left(self._points, point)
            while self._owners[idx] != node or self._points[idx] != point:
                idx += 1
            del self._points[idx]
            del self._owners[idx]

    @property
    def nodes(self) -> List[int]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # -------------------------------------------------------------- lookup

    def node_for(self, key: str) -> int:
        """The node owning ``key``: first ring point at or after its hash."""
        if not self._nodes:
            raise ConfigError("the ring has no nodes")
        point = self._point(f"key:{key}")
        idx = bisect.bisect(self._points, point)
        if idx == len(self._points):
            idx = 0
        return self._owners[idx]

    def preference(self, key: str, count: int = 2) -> List[int]:
        """The first ``count`` *distinct* nodes walking the ring from
        ``key`` -- position 0 is the owner, position 1 the cross-rack
        fallback, and so on (Dynamo's preference list)."""
        if not self._nodes:
            raise ConfigError("the ring has no nodes")
        count = min(count, len(self._nodes))
        point = self._point(f"key:{key}")
        idx = bisect.bisect(self._points, point)
        out: List[int] = []
        total = len(self._points)
        for step in range(total):
            owner = self._owners[(idx + step) % total]
            if owner not in out:
                out.append(owner)
                if len(out) == count:
                    break
        return out


class RackShard:
    """One rack behind the router: bridge + its own admission control.

    Each shard is a complete single-rack serving stack minus the TCP
    listener -- its own simulator, its own pump, its own queue-depth cap
    and token buckets.  Admission being per-shard is what makes a
    whole-rack outage shed *only* that shard's traffic instead of
    dragging the global cap down with zombie in-flight requests.
    """

    def __init__(self, index: int, bridge: SimTimeBridge,
                 admission: Optional[AdmissionController] = None) -> None:
        if index < 0:
            raise ConfigError(f"shard index must be >= 0, got {index}")
        self.index = index
        self.bridge = bridge
        self.admission = admission if admission is not None else (
            AdmissionController()
        )
        #: Raw reads this shard served because the owner's copies were
        #: both collecting (the receiving side of a cross-rack redirect).
        self.redirected_in = 0

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        await self.bridge.start()

    async def stop(self, drain: bool = True,
                   drain_timeout_s: float = 10.0) -> None:
        await self.bridge.stop(drain=drain, drain_timeout_s=drain_timeout_s)

    @property
    def inflight(self) -> int:
        return self.bridge.inflight

    @property
    def num_pairs(self) -> int:
        return len(self.bridge.rack.pairs)

    # -------------------------------------------------------------- GC view

    def gc_busy_pairs(self) -> Tuple[bool, ...]:
        """Per local pair: are *both* in-rack copies collecting right now?

        This is the truth the shard's own ToR switch holds (the same two
        table reads :meth:`MultiRackFabric.process_read` makes before it
        redirects out of rack); the router sees it only after the
        inter-switch sync delay.
        """
        switch = self.bridge.rack.switch
        out = []
        for pair in self.bridge.rack.pairs:
            primary_busy = switch.replica_table.gc_status(
                pair.primary.vssd_id) == 1
            replica_busy = switch.destination_table.gc_status(
                pair.replica.vssd_id) == 1
            out.append(primary_busy and replica_busy)
        return tuple(out)

    # ------------------------------------------------------------ reporting

    def stats_section(self) -> Dict[str, object]:
        """This shard's slice of the sharded stats payload (see
        :mod:`repro.service.schema`)."""
        payload = self.bridge.stats_payload()
        payload["admission"] = self.admission.stats()
        payload["redirected_in"] = float(self.redirected_in)
        return payload
