"""The asyncio TCP front-end: one rack served over the wire.

Connection handling is deliberately lean: read a frame, decide
admission, dispatch to the :class:`~repro.service.bridge.SimTimeBridge`,
and write the response from the request future's done-callback -- no
per-request task, lock, or drain.  Requests on one connection are
*pipelined* (the handler never waits for a response before reading the
next frame), so a single connection can keep many simulated requests in
flight; responses come back in completion order, matched by ``id``.

Backpressure is explicit: past the global queue-depth cap (or a
client's token bucket) the server answers ``BUSY`` immediately instead
of queueing, and during shutdown it answers ``SHUTTING_DOWN`` while the
already-admitted requests drain.  The queue-depth cap also bounds the
response bytes a slow reader can accumulate, which is why the write
path can skip per-response drains.
"""

import asyncio
from typing import Any, Dict, Optional, Set

from repro.cluster.config import RackConfig
from repro.errors import ConfigError
from repro.service import protocol, schema
from repro.service.admission import AdmissionController
from repro.service.bridge import SimTimeBridge
from repro.service.membership import MembershipBusy, MembershipError
from repro.service.qos import DEFAULT_TENANT, QosScheduler
from repro.service.readcache import ReadCache

#: Request types that consume simulated rack capacity and therefore
#: pass through tenant QoS admission (everything else -- hello, ping,
#: stats, admin -- is control plane).
_DATA_TYPES = frozenset(("read", "write", "get", "put", "del", "scan"))

#: Simulated latency reported for a DRAM cache hit: the request never
#: touches the rack simulator, so the charge is a nominal DRAM fetch.
CACHE_HIT_LATENCY_US = 1.0


class RackService:
    """One rack behind a TCP listener."""

    def __init__(
        self,
        config: RackConfig,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        bridge: Optional[SimTimeBridge] = None,
        admission: Optional[AdmissionController] = None,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
        pace: float = 0.0,
        chunk_us: float = 1000.0,
        request_timeout_us: Optional[float] = None,
        reuse_port: bool = False,
        qos: Optional[QosScheduler] = None,
        read_cache: Optional[ReadCache] = None,
    ) -> None:
        self.host = host
        self.port = port
        #: Optional multi-tenant QoS scheduler; when set, connections
        #: may declare a tenant in ``hello`` and every data op passes
        #: weighted-fair tenant admission before per-client admission.
        self.qos = qos
        #: Optional DRAM read-through cache for KV ``get``\ s.
        self.read_cache = read_cache
        #: Bind with ``SO_REUSEPORT`` so several per-core acceptor
        #: processes can share one listening port (``serve --workers``).
        self.reuse_port = reuse_port
        if bridge is None:
            bridge_kwargs: Dict[str, Any] = dict(pace=pace, chunk_us=chunk_us)
            if request_timeout_us is not None:
                bridge_kwargs["request_timeout_us"] = request_timeout_us
            bridge = SimTimeBridge(config, **bridge_kwargs)
        self.bridge = bridge
        self.admission = admission if admission is not None else (
            AdmissionController()
        )
        self.max_frame_bytes = max_frame_bytes
        self._server: Optional["asyncio.base_events.Server"] = None
        self._connections: Set["asyncio.Task"] = set()
        self._draining = False
        self.connections_accepted = 0
        self.responses_sent = 0
        # Completion responses accumulate here during a sim chunk and go
        # out as one write per connection when the bridge's after_chunk
        # hook fires; size is bounded by the admission queue-depth cap.
        self._write_buffers: Dict["asyncio.StreamWriter", bytearray] = {}

    # -------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Bind, listen, and start the bridge pump."""
        self.bridge.after_chunk = self._flush_writes
        await self.bridge.start()
        kwargs = {"reuse_port": True} if self.reuse_port else {}
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, **kwargs
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self, drain_timeout_s: float = 10.0) -> None:
        """Graceful drain: stop accepting, finish in-flight, then close.

        New requests arriving on live connections during the drain get
        ``SHUTTING_DOWN``; admitted ones complete normally.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.bridge.stop(drain=True, drain_timeout_s=drain_timeout_s)
        # Let queued done-callbacks buffer their final responses
        # (cancellations from a cut-short drain), then push them out
        # before closing the connections under them.  Routed completions
        # cross two chained futures, so yield a few ticks, not one.
        for _ in range(3):
            await asyncio.sleep(0)
        self._flush_writes()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    # ------------------------------------------------------------ connections

    async def _handle_connection(self, reader: "asyncio.StreamReader",
                                 writer: "asyncio.StreamWriter") -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        self.connections_accepted += 1
        peer = writer.get_extra_info("peername")
        default_client = f"{peer[0]}:{peer[1]}" if peer else "unknown"
        outstanding: Set["asyncio.Future"] = set()
        decoder = protocol.FrameDecoder(self.max_frame_bytes)
        # Per-connection identity: the tenant is declared once in the
        # hello exchange (the binary codec has no per-request field for
        # it) and sticks for the connection's lifetime.
        conn = {"tenant": DEFAULT_TENANT}
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                try:
                    requests = decoder.feed_tagged(data)
                except protocol.FrameError as exc:
                    self._send(writer, protocol.error_response(
                        protocol.BAD_REQUEST, str(exc)
                    ))
                    break  # framing is lost; drop the connection
                for request, binary in requests:
                    self._begin_request(request, default_client, writer,
                                        outstanding, binary, conn)
                # Push out whatever the batch produced synchronously
                # (rejections, pings); completions flush per sim chunk.
                self._flush_writes()
            if outstanding:
                # EOF with requests still in the simulator: finish them
                # (their callbacks write into the closing socket, which
                # is harmless if the peer is truly gone).
                await asyncio.wait(outstanding)
        except (asyncio.CancelledError, ConnectionResetError,
                BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                # A handler cancelled mid-drain re-raises CancelledError at
                # its next await; the connection is closing either way.
                pass
            if task is not None:
                self._connections.discard(task)

    def _send(self, writer: "asyncio.StreamWriter",
              response: Dict[str, Any]) -> None:
        """Immediate response write (ping/stats/rejections)."""
        if writer.is_closing():
            return
        try:
            writer.write(protocol.encode_frame(response))
        except (ConnectionResetError, BrokenPipeError):
            return  # client went away; the simulated work still completed
        self.responses_sent += 1

    def _send_batched(self, writer: "asyncio.StreamWriter",
                      response: Dict[str, Any],
                      binary: bool = False) -> None:
        """Buffer a completion response for the next chunk flush.

        ``binary`` answers in the protocol-v2 codec (with automatic JSON
        fallback for shapes it cannot express) -- set iff the request
        arrived in binary, which is what keeps v1 clients on pure JSON.
        """
        if writer.is_closing():
            return
        buffer = self._write_buffers.get(writer)
        if buffer is None:
            buffer = self._write_buffers[writer] = bytearray()
        buffer += protocol.encode_frame_as(response, binary)
        self.responses_sent += 1

    def _flush_writes(self) -> None:
        """One socket write per connection with pending responses."""
        if not self._write_buffers:
            return
        buffers, self._write_buffers = self._write_buffers, {}
        for writer, buffer in buffers.items():
            if writer.is_closing():
                continue
            try:
                writer.write(bytes(buffer))
            except (ConnectionResetError, BrokenPipeError):
                continue

    # ------------------------------------------------------- subclass hooks

    def _capabilities(self) -> list:
        """What this server advertises in the ``hello`` exchange."""
        caps = ["raw", "kv", "bin"]
        if self.qos is not None:
            caps.append("qos")
        return caps

    def _hello_fields(self) -> Dict[str, Any]:
        """Extra fields for the ``hello`` response."""
        return {"racks": 1, "epoch": self._current_epoch()}

    def _current_epoch(self) -> int:
        """The fleet's ring epoch.  A single fixed rack never rebalances,
        so the base service sits at epoch 0 forever; the sharded flavours
        report their :class:`~repro.service.membership.FleetController`'s
        epoch, which bumps at every membership cutover."""
        return 0

    def _fleet_status(self) -> Dict[str, Any]:
        """Body of an ``admin``/``status`` response."""
        return {"epoch": self._current_epoch(), "racks": [0],
                "migrating": False, "phase": "static"}

    def _admin_mutation(self, op: str,
                        request: Dict[str, Any]) -> Optional["asyncio.Future"]:
        """Start a membership mutation; returns an awaitable or ``None``
        for unknown/unsupported ops.  A fixed single rack supports none."""
        return None

    def _admit(self, client: str, request: Dict[str, Any]) -> bool:
        """One admission decision (sharded flavours route first)."""
        return self.admission.try_admit(client, self.bridge.inflight)

    def _submit(self, rtype: Optional[str], request: Dict[str, Any],
                client: str) -> "asyncio.Future":
        """Dispatch an admitted request into the simulator.

        Raises ``KeyError``/``TypeError``/``ValueError``/``ConfigError``
        for malformed operands or unknown types; the caller maps all of
        them to ``BAD_REQUEST``.
        """
        bridge = self.bridge
        if rtype == "read":
            return bridge.submit_read(
                int(request["pair"]), int(request["lpn"]), client,
                replica=bool(request.get("replica", False)),
            )
        if rtype == "write":
            return bridge.submit_write(
                int(request["pair"]), int(request["lpn"]), client
            )
        if rtype == "get":
            return bridge.submit_get(request["key"], client)
        if rtype == "put":
            return bridge.submit_put(request["key"], request["value"], client)
        if rtype == "del":
            return bridge.submit_delete(request["key"], client)
        if rtype == "scan":
            return bridge.submit_scan(
                request.get("start", ""), int(request.get("count", 10)),
                client,
            )
        raise ConfigError(f"unknown request type {rtype!r}")

    def _stats_payload(self) -> Dict[str, Any]:
        """The full body of a ``stats`` response."""
        return schema.assemble_server_stats(
            self.bridge.stats_payload(), self.admission.stats(),
            self.connections_accepted,
            tenants=(self.qos.stats_section()
                     if self.qos is not None else None),
            readcache=(self.read_cache.stats_section()
                       if self.read_cache is not None else None),
        )

    # ----------------------------------------------------------------- admin

    def _begin_admin(self, request: Dict[str, Any],
                     writer: "asyncio.StreamWriter",
                     outstanding: Set["asyncio.Future"],
                     binary: bool = False) -> None:
        """In-band fleet administration on the v1 JSON wire.

        ``status`` answers immediately; mutations (``add_rack`` /
        ``drain_rack``) run as a task -- migration takes real time under
        live load -- and respond when the cutover (or the abort) lands.
        """
        request_id = request.get("id")
        op = request.get("op")
        if op in ("status", "fleet_status"):
            self._send_batched(writer, protocol.ok_response(
                request_id, **self._fleet_status()
            ), binary)
            return
        try:
            pending = self._admin_mutation(str(op), request)
        except (KeyError, TypeError, ValueError, ConfigError) as exc:
            self._send_batched(writer, protocol.error_response(
                protocol.BAD_REQUEST, f"{type(exc).__name__}: {exc}",
                request_id,
            ), binary)
            return
        if pending is None:
            self._send_batched(writer, protocol.error_response(
                protocol.BAD_REQUEST,
                f"unsupported admin op {op!r} for this deployment",
                request_id,
            ), binary)
            return
        task = asyncio.ensure_future(pending)
        outstanding.add(task)

        def _respond(fut: "asyncio.Future") -> None:
            outstanding.discard(fut)
            if fut.cancelled():
                self._send(writer, protocol.error_response(
                    protocol.SHUTTING_DOWN, "admin op cancelled at shutdown",
                    request_id,
                ))
                return
            exc = fut.exception()
            if exc is None:
                self._send(writer,
                           protocol.ok_response(request_id, **fut.result()))
            elif isinstance(exc, MembershipBusy):
                self._send(writer, protocol.error_response(
                    protocol.BUSY, str(exc), request_id
                ))
            elif isinstance(exc, (KeyError, TypeError, ValueError,
                                  ConfigError)):
                self._send(writer, protocol.error_response(
                    protocol.BAD_REQUEST, f"{type(exc).__name__}: {exc}",
                    request_id,
                ))
            elif isinstance(exc, (MembershipError, asyncio.TimeoutError,
                                  ConnectionError, OSError)):
                self._send(writer, protocol.error_response(
                    protocol.INTERNAL,
                    f"membership change failed: {exc}", request_id,
                ))
            else:
                self._send(writer, protocol.error_response(
                    protocol.INTERNAL, f"{type(exc).__name__}: {exc}",
                    request_id,
                ))

        task.add_done_callback(_respond)

    # --------------------------------------------------------------- dispatch

    def _begin_request(self, request: Dict[str, Any], default_client: str,
                       writer: "asyncio.StreamWriter",
                       outstanding: Set["asyncio.Future"],
                       binary: bool = False,
                       conn: Optional[Dict[str, str]] = None) -> None:
        """Admit and dispatch one request; responses are written either
        immediately (rejections, ping/stats) or from the sim future's
        done-callback when the simulated request completes.  ``binary``
        tags how the request arrived; every response to it answers in
        the same codec.  ``conn`` carries per-connection state (the
        hello-declared tenant)."""
        request_id = request.get("id")
        bad_version = protocol.check_version(request)
        if bad_version is not None:
            self._send_batched(writer, protocol.error_response(
                protocol.UNSUPPORTED_VERSION,
                f"server speaks v{protocol.PROTOCOL_VERSION}, "
                f"got v{bad_version!r}", request_id,
            ), binary)
            return
        rtype = request.get("type")
        # Cheap, non-simulated request types bypass admission entirely.
        if rtype == "hello":
            declared = request.get("tenant")
            extra: Dict[str, Any] = {}
            if declared is not None:
                if not isinstance(declared, str) or not declared:
                    self._send_batched(writer, protocol.error_response(
                        protocol.BAD_REQUEST,
                        f"tenant must be a non-empty string, "
                        f"got {declared!r}", request_id,
                    ), binary)
                    return
                if self.qos is not None and not self.qos.knows(declared):
                    self._send_batched(writer, protocol.error_response(
                        protocol.BAD_REQUEST,
                        f"unknown tenant {declared!r}; declared tenants: "
                        f"{self.qos.tenant_names}", request_id,
                    ), binary)
                    return
                if conn is not None:
                    conn["tenant"] = declared
                extra["tenant"] = declared
            self._send_batched(writer, protocol.hello_response(
                request_id, capabilities=self._capabilities(),
                **self._hello_fields(), **extra,
            ), binary)
            return
        if rtype == "ping":
            self._send_batched(writer,
                               protocol.ok_response(request_id, pong=True),
                               binary)
            return
        if rtype == "stats":
            self._send_batched(writer, protocol.ok_response(
                request_id, **self._stats_payload()
            ), binary)
            return
        if rtype == "admin":
            self._begin_admin(request, writer, outstanding, binary)
            return
        epoch = request.get("epoch")
        if epoch is not None and epoch != self._current_epoch():
            # The client pinned a routing view that a membership cutover
            # has since invalidated; it must re-``hello`` and retry.
            self._send_batched(writer, protocol.error_response(
                protocol.WRONG_SHARD,
                f"request pinned ring epoch {epoch!r}, fleet is at "
                f"epoch {self._current_epoch()}", request_id,
            ), binary)
            return
        if self._draining:
            self._send_batched(writer, protocol.error_response(
                protocol.SHUTTING_DOWN, "server is draining", request_id
            ), binary)
            return
        client = str(request.get("client") or default_client)
        tenant = conn.get("tenant", DEFAULT_TENANT) if conn else DEFAULT_TENANT
        qos = self.qos if rtype in _DATA_TYPES else None
        if qos is not None and not qos.try_admit(tenant):
            self._send_batched(writer, protocol.error_response(
                protocol.BUSY,
                f"tenant {tenant!r} is over its QoS budget", request_id,
            ), binary)
            return
        cache = self.read_cache
        key = request.get("key") if isinstance(request.get("key"), str) \
            else None
        fill_token = None
        if cache is not None and rtype == "get" and key is not None:
            hit, value, fill_token = cache.lookup(key, tenant)
            if hit:
                # Served straight from front-end DRAM: no admission, no
                # simulated work, and the hit still counts toward the
                # tenant's SLO window (a near-zero-latency success).
                if qos is not None:
                    qos.on_submit(tenant)
                    qos.on_complete(tenant, CACHE_HIT_LATENCY_US / 1000.0)
                self._send_batched(writer, protocol.ok_response(
                    request_id, value=value, found=True,
                    latency_us=CACHE_HIT_LATENCY_US,
                ), binary)
                return
        if not self._admit(client, request):
            self._send_batched(writer, protocol.error_response(
                protocol.BUSY, "admission control shed this request",
                request_id,
            ), binary)
            return
        try:
            future = self._submit(rtype, request, client)
        except (KeyError, TypeError, ValueError, ConfigError) as exc:
            self._send_batched(writer, protocol.error_response(
                protocol.BAD_REQUEST, f"{type(exc).__name__}: {exc}",
                request_id,
            ), binary)
            return
        outstanding.add(future)
        if qos is not None:
            qos.on_submit(tenant)

        def _qos_done(result: Optional[Dict[str, Any]], ok: bool) -> None:
            if qos is None:
                return
            latency_us = (result or {}).get("latency_us")
            latency_ms = (float(latency_us) / 1000.0
                          if isinstance(latency_us, (int, float)) else None)
            qos.on_complete(tenant, latency_ms, ok=ok)

        def _respond(fut: "asyncio.Future") -> None:
            outstanding.discard(fut)
            if fut.cancelled():
                _qos_done(None, False)
                self._send_batched(writer, protocol.error_response(
                    protocol.SHUTTING_DOWN, "request cancelled at shutdown",
                    request_id,
                ), binary)
                return
            exc = fut.exception()
            if exc is None:
                result = fut.result()
                _qos_done(result, True)
                if cache is not None and key is not None:
                    if rtype in ("put", "del"):
                        # Write-through invalidation at completion time:
                        # the store now holds the new value, so purge the
                        # key and fence any fill racing this write.
                        cache.invalidate(key)
                    elif (rtype == "get" and fill_token is not None
                          and result.get("found")):
                        cache.fill(key, result.get("value"), tenant,
                                   fill_token)
                self._send_batched(
                    writer, protocol.ok_response(request_id, **result),
                    binary,
                )
            elif isinstance(exc, asyncio.TimeoutError):
                _qos_done(None, False)
                self._send_batched(writer, protocol.error_response(
                    protocol.TIMEOUT, str(exc), request_id
                ), binary)
            elif isinstance(exc, (KeyError, TypeError, ValueError,
                                  ConfigError)):
                _qos_done(None, False)
                self._send_batched(writer, protocol.error_response(
                    protocol.BAD_REQUEST, f"{type(exc).__name__}: {exc}",
                    request_id,
                ), binary)
            else:
                _qos_done(None, False)
                self._send_batched(writer, protocol.error_response(
                    protocol.INTERNAL, f"{type(exc).__name__}: {exc}",
                    request_id,
                ), binary)

        future.add_done_callback(_respond)
