"""The RackBlox switch tables (Figure 5).

Two tables live in the switch data plane, sized for on-chip SRAM:

* **replica table** -- vSSD_ID -> (GC status [1 B], replica vSSD_ID [4 B]);
* **destination table** -- vSSD_ID -> (GC status [1 B], server IP [4 B]).

GC status fields are modelled as data-plane *registers* (updatable per
packet without control-plane involvement), matching the paper's P4
implementation which spends 128 KB of stateful memory on them.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SwitchError

#: Paper's sizing bound: 64 servers x 16 SSDs x 128 vSSDs.
MAX_VSSDS_PER_RACK = 64 * 16 * 128


@dataclass
class ReplicaEntry:
    gc_status: int  # 1 byte: 0 = idle, 1 = collecting
    replica_vssd_id: int  # 4 bytes

    ENTRY_BYTES = 1 + 4


@dataclass
class DestinationEntry:
    gc_status: int  # 1 byte
    server_ip: str  # 4 bytes on the wire (dotted quad here)

    ENTRY_BYTES = 1 + 4


class _RegisterTable:
    """Shared machinery: bounded table with register-backed GC bits."""

    entry_bytes = 5

    def __init__(self, capacity: int = MAX_VSSDS_PER_RACK) -> None:
        if capacity <= 0:
            raise SwitchError(f"table capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: Dict[int, object] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vssd_id: int) -> bool:
        return vssd_id in self._entries

    def remove(self, vssd_id: int) -> None:
        if vssd_id not in self._entries:
            raise SwitchError(f"vSSD {vssd_id} not present in table")
        del self._entries[vssd_id]

    def ids(self) -> List[int]:
        """Installed vSSD ids, sorted (for audits against the log)."""
        return sorted(self._entries)

    def size_bytes(self) -> int:
        """Current SRAM footprint (vSSD_ID key + entry payload)."""
        return len(self._entries) * (4 + self.entry_bytes)

    def _check_capacity(self, vssd_id: int) -> None:
        if vssd_id not in self._entries and len(self._entries) >= self.capacity:
            raise SwitchError(
                f"table full ({self.capacity} entries); cannot insert vSSD {vssd_id}"
            )


class ReplicaTable(_RegisterTable):
    """vSSD -> (gc_status, replica vSSD) -- consulted on the read path."""

    def insert(self, vssd_id: int, replica_vssd_id: int, gc_status: int = 0) -> None:
        self._check_capacity(vssd_id)
        self._entries[vssd_id] = ReplicaEntry(gc_status, replica_vssd_id)

    def get(self, vssd_id: int) -> Optional[ReplicaEntry]:
        return self._entries.get(vssd_id)

    def gc_status(self, vssd_id: int) -> int:
        entry = self._entries.get(vssd_id)
        if entry is None:
            raise SwitchError(f"vSSD {vssd_id} not in replica table")
        return entry.gc_status

    def set_gc_status(self, vssd_id: int, status: int) -> None:
        if status not in (0, 1):
            raise SwitchError(f"gc_status is a 1-bit register; got {status}")
        entry = self._entries.get(vssd_id)
        if entry is None:
            raise SwitchError(f"vSSD {vssd_id} not in replica table")
        entry.gc_status = status

    def replica_of(self, vssd_id: int) -> int:
        entry = self._entries.get(vssd_id)
        if entry is None:
            raise SwitchError(f"vSSD {vssd_id} not in replica table")
        return entry.replica_vssd_id


class DestinationTable(_RegisterTable):
    """vSSD -> (gc_status, server IP) -- the forwarding target."""

    def insert(self, vssd_id: int, server_ip: str, gc_status: int = 0) -> None:
        self._check_capacity(vssd_id)
        self._entries[vssd_id] = DestinationEntry(gc_status, server_ip)

    def get(self, vssd_id: int) -> Optional[DestinationEntry]:
        return self._entries.get(vssd_id)

    def server_ip(self, vssd_id: int) -> str:
        entry = self._entries.get(vssd_id)
        if entry is None:
            raise SwitchError(f"vSSD {vssd_id} not in destination table")
        return entry.server_ip

    def gc_status(self, vssd_id: int) -> int:
        entry = self._entries.get(vssd_id)
        if entry is None:
            raise SwitchError(f"vSSD {vssd_id} not in destination table")
        return entry.gc_status

    def set_gc_status(self, vssd_id: int, status: int) -> None:
        if status not in (0, 1):
            raise SwitchError(f"gc_status is a 1-bit register; got {status}")
        entry = self._entries.get(vssd_id)
        if entry is None:
            raise SwitchError(f"vSSD {vssd_id} not in destination table")
        entry.gc_status = status
