"""A match-action pipeline model (the P4/Tofino execution constraints).

A reconfigurable match-action ASIC processes a packet in one front-to-back
traversal of its stages; each stage's stateful memory (registers) can be
accessed **once per pass**, in stage order.  A program that needs to touch
an earlier stage again -- or the same stage twice -- must *recirculate*
the packet for another pass.

This is exactly why the paper's soft-GC path recirculates (§3.5.1): the
soft request must *read* the replica's GC bit and then *write* its own GC
bit in the destination table -- two stateful accesses to the same stage --
so "we recirculate the packet once to ensure consistency".

:class:`MatchActionPipeline` turns an access sequence into a pass count,
and the data plane uses it to price each operation instead of hard-coding
pass counts.
"""

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import SwitchError


@dataclass(frozen=True)
class StatefulAccess:
    """One register access: which table, read or write."""

    table: str
    op: str  # "read" | "write"

    def __post_init__(self) -> None:
        if self.op not in ("read", "write"):
            raise SwitchError(f"register access must be read/write, got {self.op!r}")


class MatchActionPipeline:
    """Stage layout + the single-access-per-stage-per-pass rule."""

    def __init__(self, table_stages: Dict[str, int], num_stages: int = 12) -> None:
        if num_stages < 1:
            raise SwitchError("pipeline needs at least one stage")
        for table, stage in table_stages.items():
            if not 0 <= stage < num_stages:
                raise SwitchError(
                    f"table {table!r} placed in stage {stage}, but the "
                    f"pipeline has stages [0,{num_stages})"
                )
        self.table_stages = dict(table_stages)
        self.num_stages = num_stages

    def passes_required(self, accesses: Sequence[StatefulAccess]) -> int:
        """Passes needed to execute the accesses in program order."""
        passes = 1
        # Highest stage whose registers this pass has already touched;
        # -1 = nothing touched yet.
        frontier = -1
        for access in accesses:
            stage = self.table_stages.get(access.table)
            if stage is None:
                raise SwitchError(f"unknown table {access.table!r}")
            if stage <= frontier:
                # The packet is already past this stage: recirculate.
                passes += 1
                frontier = stage
            else:
                frontier = stage
        return passes


#: The RackBlox layout: the replica table's registers live in an earlier
#: stage than the destination table's (reads consult replica first).
RACKBLOX_PIPELINE = MatchActionPipeline({"replica": 2, "destination": 5})

#: Stateful access sequences of Algorithm 1, per operation.
RACKBLOX_PROGRAMS: Dict[str, List[StatefulAccess]] = {
    # Reads: check own GC bit (replica table), then the replica's bit and
    # the forwarding entry (destination table) -- strictly forward.
    "read": [
        StatefulAccess("replica", "read"),
        StatefulAccess("destination", "read"),
    ],
    # Writes just forward.
    "write": [StatefulAccess("destination", "read")],
    # Regular/bg gc_op: set own bit in both tables -- forward order.
    "gc_regular": [
        StatefulAccess("replica", "write"),
        StatefulAccess("destination", "write"),
    ],
    "gc_bg": [
        StatefulAccess("replica", "write"),
        StatefulAccess("destination", "write"),
    ],
    # Soft gc_op: set own replica bit, read the *replica's* destination
    # bit, then (on accept) write our own destination bit -- the second
    # destination access cannot happen in the same pass.
    "gc_soft": [
        StatefulAccess("replica", "write"),
        StatefulAccess("destination", "read"),
        StatefulAccess("destination", "write"),
    ],
    # Finish: clear both bits, forward order.
    "gc_finish": [
        StatefulAccess("replica", "write"),
        StatefulAccess("destination", "write"),
    ],
}


def rackblox_passes(operation: str) -> int:
    """Pass count for one of Algorithm 1's operations."""
    try:
        program = RACKBLOX_PROGRAMS[operation]
    except KeyError:
        known = ", ".join(sorted(RACKBLOX_PROGRAMS))
        raise SwitchError(f"unknown operation {operation!r} (known: {known})")
    return RACKBLOX_PIPELINE.passes_required(program)
