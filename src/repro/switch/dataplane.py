"""Algorithm 1: the RackBlox workflow in the switch data plane.

The data plane processes each RackBlox packet in one match-action pass:

* **writes** are forwarded untouched -- replication needs every replica to
  see the write (§3.5.1);
* **reads** are *redirected* to the replica when the target vSSD is in GC
  and the replica is not;
* **gc_op** packets drive the GC admission state machine: ``regular``
  requests are always accepted, ``soft`` requests are *delayed* when the
  replica is already collecting (this consistency check across the two
  tables requires one packet recirculation, §3.5.1), ``bg`` requests are
  recorded without approval, and ``finish`` clears the GC bits.

The data plane is pure logic over the tables; forwarding delays are the
rack's job.  Counters expose redirects/accepts/delays/recirculations for
the evaluation harness.
"""

from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import SwitchError
from repro.net.packet import GcKind, OpType, Packet
from repro.switch.pipeline import rackblox_passes
from repro.switch.tables import DestinationTable, ReplicaTable


@dataclass(frozen=True)
class ForwardAction:
    """Forward the packet to a storage server."""

    packet: Packet
    dst_ip: str
    redirected: bool = False


@dataclass(frozen=True)
class ReplyAction:
    """Send a (gc_op) reply straight back to the requesting server."""

    packet: Packet
    dst_ip: str


SwitchAction = Union[ForwardAction, ReplyAction]


class SwitchDataPlane:
    """Executes Algorithm 1 against the replica and destination tables."""

    #: One pipeline traversal on a Tofino-class ASIC (ns-scale; we charge a
    #: conservative fraction of a microsecond).
    PIPELINE_PASS_US = 0.4

    def __init__(
        self,
        replica_table: Optional[ReplicaTable] = None,
        destination_table: Optional[DestinationTable] = None,
    ) -> None:
        self.replica_table = replica_table if replica_table is not None else ReplicaTable()
        self.destination_table = (
            destination_table if destination_table is not None else DestinationTable()
        )
        # Data-plane counters.
        self.reads_forwarded = 0
        self.reads_redirected = 0
        self.writes_forwarded = 0
        self.gc_accepted = 0
        self.gc_delayed = 0
        self.gc_finished = 0
        self.recirculations = 0

    def process_packet(self, pkt: Packet) -> SwitchAction:
        """One pipeline pass of Algorithm 1; returns the forwarding action."""
        if pkt.op is OpType.WRITE:
            # Line 2-3: writes go to every replica; never redirected.
            self.writes_forwarded += 1
            dst = self.destination_table.server_ip(pkt.vssd_id)
            return ForwardAction(packet=pkt, dst_ip=dst)

        if pkt.op is OpType.READ:
            return self._process_read(pkt)

        if pkt.op is OpType.GC_OP:
            return self._process_gc_op(pkt)

        raise SwitchError(
            f"op {pkt.op.name} is a control-plane packet; the data plane "
            "only handles read/write/gc_op"
        )

    @property
    def pipeline_delay_us(self) -> float:
        """Per-packet data-plane latency (one pass)."""
        return self.PIPELINE_PASS_US

    # ------------------------------------------------------------- read path

    def _process_read(self, pkt: Packet) -> ForwardAction:
        # Line 4-9: redirect to the replica iff this vSSD is collecting and
        # the replica is not (both collecting -> forward as-is).
        entry = self.replica_table.get(pkt.vssd_id)
        if entry is None:
            raise SwitchError(f"read for unregistered vSSD {pkt.vssd_id}")
        redirected = False
        if entry.gc_status == 1:
            replica = entry.replica_vssd_id
            if self.destination_table.gc_status(replica) == 0:
                pkt.vssd_id = replica
                redirected = True
        dst = self.destination_table.server_ip(pkt.vssd_id)
        pkt.dst = dst
        if redirected:
            self.reads_redirected += 1
        else:
            self.reads_forwarded += 1
        return ForwardAction(packet=pkt, dst_ip=dst, redirected=redirected)

    # ----------------------------------------------------------- gc_op path

    def _process_gc_op(self, pkt: Packet) -> ReplyAction:
        kind = pkt.gc_kind
        if kind is None:
            raise SwitchError("gc_op packet missing the gc payload field")
        vssd_id = pkt.vssd_id
        if vssd_id not in self.replica_table:
            raise SwitchError(f"gc_op for unregistered vSSD {vssd_id}")

        # Line 11: the pass begins by marking the vSSD as collecting in the
        # replica table.
        if kind is not GcKind.FINISH:
            self.replica_table.set_gc_status(vssd_id, 1)

        if kind is GcKind.SOFT:
            # Line 12-18.  Checking the *replica's* GC bit lives in the
            # destination table; updating our own bit there too would need a
            # second stateful access in the same stage, so the packet is
            # recirculated once (the paper's consistency workaround).
            self.recirculations += 1
            replica = self.replica_table.replica_of(vssd_id)
            if self.destination_table.gc_status(replica) == 1:
                pkt.with_gc(GcKind.DELAY)
                self.replica_table.set_gc_status(vssd_id, 0)
                self.gc_delayed += 1
            else:
                pkt.with_gc(GcKind.ACCEPT)
                self.destination_table.set_gc_status(vssd_id, 1)
                self.gc_accepted += 1
        elif kind is GcKind.FINISH:
            # Line 19-20: clear both tables' GC bits.
            self.replica_table.set_gc_status(vssd_id, 0)
            self.destination_table.set_gc_status(vssd_id, 0)
            self.gc_finished += 1
        elif kind in (GcKind.REGULAR, GcKind.BG):
            # Line 21-23: regular (and background) GC is never denied.
            self.destination_table.set_gc_status(vssd_id, 1)
            pkt.with_gc(GcKind.ACCEPT)
            self.gc_accepted += 1
        else:
            raise SwitchError(
                f"server sent gc={kind.name}; accept/delay are switch-issued"
            )

        # Line 24: reply returns to the sender.
        pkt.dst = pkt.src
        return ReplyAction(packet=pkt, dst_ip=pkt.dst)

    def gc_op_delay_us(self, kind: GcKind) -> float:
        """Data-plane latency for a gc_op of the given kind.

        The pass count comes from the match-action pipeline model: soft
        requests need a second stateful access to the destination table's
        stage, hence one recirculation (see
        :mod:`repro.switch.pipeline`).
        """
        operation = {
            GcKind.SOFT: "gc_soft",
            GcKind.REGULAR: "gc_regular",
            GcKind.BG: "gc_bg",
            GcKind.FINISH: "gc_finish",
        }.get(kind)
        if operation is None:
            raise SwitchError(f"gc kind {kind.name} has no data-plane program")
        return rackblox_passes(operation) * self.PIPELINE_PASS_US
