"""The switch control plane.

Handles the slow-path operations of Table 1: ``create_vssd`` installs the
replica/destination entries for a new vSSD (GC state initialised to 0,
§3.3), ``del_vssd`` removes them.  Also provides the switch-recovery
repopulation hook used by the failure-handling machinery (§3.7 "Others").
"""

from typing import Dict, List, Tuple

from repro.errors import SwitchError
from repro.net.packet import OpType, Packet
from repro.switch.dataplane import SwitchDataPlane


class SwitchControlPlane:
    """Thrift-API stand-in: installs and removes table entries."""

    def __init__(self, dataplane: SwitchDataPlane) -> None:
        self.dataplane = dataplane
        #: Registration log, kept so a recovered switch can be repopulated.
        self._registrations: Dict[int, Tuple[str, int, str]] = {}
        self.vssds_created = 0
        self.vssds_deleted = 0

    def handle_packet(self, pkt: Packet) -> None:
        """Dispatch a control packet (create_vssd / del_vssd)."""
        if pkt.op is OpType.CREATE_VSSD:
            payload = pkt.payload
            missing = {"server_ip", "replica_vssd_id", "replica_ip"} - set(payload)
            if missing:
                raise SwitchError(f"create_vssd payload missing {sorted(missing)}")
            self.register_vssd(
                pkt.vssd_id,
                payload["server_ip"],
                payload["replica_vssd_id"],
                payload["replica_ip"],
            )
        elif pkt.op is OpType.DEL_VSSD:
            self.deregister_vssd(pkt.vssd_id)
        else:
            raise SwitchError(f"control plane cannot handle op {pkt.op.name}")

    def register_vssd(
        self, vssd_id: int, server_ip: str, replica_vssd_id: int, replica_ip: str
    ) -> None:
        """Install both directions: the vSSD and its replica are each
        routable, and each names the other as its replica."""
        if vssd_id in self._registrations:
            raise SwitchError(f"vSSD {vssd_id} already registered")
        self.dataplane.replica_table.insert(vssd_id, replica_vssd_id, gc_status=0)
        self.dataplane.destination_table.insert(vssd_id, server_ip, gc_status=0)
        # The replica's own entries are installed when *its* create_vssd
        # arrives; install its destination row eagerly so redirection works
        # even before that (idempotent overwrite is rejected, so check).
        if replica_vssd_id not in self.dataplane.destination_table:
            self.dataplane.destination_table.insert(
                replica_vssd_id, replica_ip, gc_status=0
            )
        self._registrations[vssd_id] = (server_ip, replica_vssd_id, replica_ip)
        self.vssds_created += 1

    def deregister_vssd(self, vssd_id: int) -> None:
        if vssd_id not in self._registrations:
            raise SwitchError(f"vSSD {vssd_id} was never registered")
        del self._registrations[vssd_id]
        self.dataplane.replica_table.remove(vssd_id)
        if vssd_id in self.dataplane.destination_table:
            self.dataplane.destination_table.remove(vssd_id)
        self.vssds_deleted += 1

    def registered_vssds(self) -> List[int]:
        return sorted(self._registrations)

    def registration_log(self) -> Dict[int, Tuple[str, int, str]]:
        """Snapshot of the log: vssd_id -> (server_ip, replica_id, replica_ip).

        This is the ground truth the data-plane tables are audited
        against (and rebuilt from on switch recovery).
        """
        return dict(self._registrations)

    def replace_registration(
        self, old_vssd_id: int, new_vssd_id: int, server_ip: str
    ) -> None:
        """Swap a re-replicated member in the log, log-only.

        The failure manager rewires the data-plane tables itself while
        the rack keeps serving; this keeps the registration log naming
        the rebuilt vSSD (and its partner's replica link) so a later
        switch recovery repopulates correct tables.
        """
        if old_vssd_id not in self._registrations:
            raise SwitchError(f"vSSD {old_vssd_id} was never registered")
        _old_ip, replica_id, replica_ip = self._registrations.pop(old_vssd_id)
        self._registrations[new_vssd_id] = (server_ip, replica_id, replica_ip)
        partner = self._registrations.get(replica_id)
        if partner is not None:
            self._registrations[replica_id] = (partner[0], new_vssd_id, server_ip)

    def repopulate(self, dataplane: SwitchDataPlane) -> None:
        """Reinstall every registration into a fresh data plane.

        Used on switch recovery: the ToR switch's tables are rebuilt from
        the control plane's registration log.
        """
        for vssd_id, (server_ip, replica_id, replica_ip) in self._registrations.items():
            dataplane.replica_table.insert(vssd_id, replica_id, gc_status=0)
            if vssd_id not in dataplane.destination_table:
                dataplane.destination_table.insert(vssd_id, server_ip, gc_status=0)
            if replica_id not in dataplane.destination_table:
                dataplane.destination_table.insert(replica_id, replica_ip, gc_status=0)
        self.dataplane = dataplane
