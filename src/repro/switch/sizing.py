"""Switch resource sizing (§3.3's arithmetic, executable).

The paper budgets its tables against Tofino SRAM: "a rack usually has 64
servers or less, each server has 16 SSDs, and each SSD can be virtualized
into 128 vSSDs, we will have up to 64K vSSDs in a rack.  The maximum size
of each table is 1.3MB" -- with 128 KB of stateful register memory for
the GC bits.  This module makes that arithmetic a first-class, testable
artifact, so configuration changes (bigger racks, smaller vSSDs) can be
checked against the SRAM budget before deployment.
"""

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.switch.tables import DestinationEntry, ReplicaEntry

#: On-chip SRAM available to user tables in a Tofino-class ASIC (bytes);
#: the paper says "tens of MBs" -- we budget conservatively.
DEFAULT_SRAM_BUDGET_BYTES = 20 * 1024 * 1024

#: 4-byte vSSD_ID key per table entry (Figure 5).
KEY_BYTES = 4


@dataclass(frozen=True)
class RackScale:
    """The deployment parameters that size the switch tables."""

    servers: int = 64
    ssds_per_server: int = 16
    vssds_per_ssd: int = 128
    #: vSSD minimum size drives vssds_per_ssd: a 4 TB SSD at 32 GB/vSSD
    #: gives 128 (the paper's footnote 1).
    ssd_capacity_gb: int = 4096
    min_vssd_gb: int = 32

    def __post_init__(self) -> None:
        for name in ("servers", "ssds_per_server", "vssds_per_ssd",
                     "ssd_capacity_gb", "min_vssd_gb"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")

    @property
    def max_vssds(self) -> int:
        return self.servers * self.ssds_per_server * self.vssds_per_ssd

    @property
    def vssds_per_ssd_from_capacity(self) -> int:
        return self.ssd_capacity_gb // self.min_vssd_gb


@dataclass(frozen=True)
class TableBudget:
    """SRAM footprint of the RackBlox tables at a given scale."""

    replica_table_bytes: int
    destination_table_bytes: int
    gc_register_bytes: int

    @property
    def total_bytes(self) -> int:
        return (
            self.replica_table_bytes
            + self.destination_table_bytes
            + self.gc_register_bytes
        )

    def fits(self, sram_budget_bytes: int = DEFAULT_SRAM_BUDGET_BYTES) -> bool:
        return self.total_bytes <= sram_budget_bytes


def size_tables(scale: RackScale = RackScale()) -> TableBudget:
    """Compute the Figure 5 tables' footprint for a deployment scale.

    Each table entry is a 4-byte vSSD_ID key plus its payload (1-byte GC
    status + 4-byte replica ID / server IP); the GC status bits are also
    held in data-plane registers (1 byte per vSSD per table) so they can
    be updated per packet.
    """
    n = scale.max_vssds
    replica_bytes = n * (KEY_BYTES + ReplicaEntry.ENTRY_BYTES)
    destination_bytes = n * (KEY_BYTES + DestinationEntry.ENTRY_BYTES)
    gc_register_bytes = 2 * n  # one status byte per table, register-backed
    return TableBudget(
        replica_table_bytes=replica_bytes,
        destination_table_bytes=destination_bytes,
        gc_register_bytes=gc_register_bytes,
    )


def max_rack_scale_for_budget(
    sram_budget_bytes: int = DEFAULT_SRAM_BUDGET_BYTES,
    ssds_per_server: int = 16,
    vssds_per_ssd: int = 128,
) -> int:
    """Largest server count whose tables fit the SRAM budget."""
    servers = 1
    while True:
        scale = RackScale(
            servers=servers + 1,
            ssds_per_server=ssds_per_server,
            vssds_per_ssd=vssds_per_ssd,
        )
        if not size_tables(scale).fits(sram_budget_bytes):
            return servers
        servers += 1
        if servers > 4096:  # safety stop; budgets this large are unreal
            return servers
