"""Switch-side flow telemetry.

The SDN data plane's observability layer: per-flow packet/byte counters
and per-flow latency tracking.  Switch SRAM cannot hold exact state for
every flow, so the standard tool is a **count-min sketch** -- a fixed-size
probabilistic counter array whose estimates never undercount -- plus a
small exact table for the heavy hitters it surfaces.  RackBlox's control
plane can read this to see which tenants dominate a port and how per-hop
latency is trending (the INT aggregate the paper's coordinated scheduling
consumes).
"""

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError


class CountMinSketch:
    """Fixed-memory frequency estimation; estimates never undercount."""

    def __init__(self, width: int = 1024, depth: int = 4) -> None:
        if width < 8 or depth < 1:
            raise ConfigError("width must be >= 8 and depth >= 1")
        self.width = width
        self.depth = depth
        self._rows: List[List[int]] = [[0] * width for _ in range(depth)]
        self.total = 0

    def _positions(self, key: str) -> List[int]:
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:], "little") | 1
        return [(h1 + i * h2) % self.width for i in range(self.depth)]

    def add(self, key: str, count: int = 1) -> None:
        if count < 0:
            raise ConfigError("count must be >= 0")
        for row, pos in zip(self._rows, self._positions(key)):
            row[pos] += count
        self.total += count

    def estimate(self, key: str) -> int:
        """An upper-bounded estimate: true count <= estimate."""
        return min(
            row[pos] for row, pos in zip(self._rows, self._positions(key))
        )

    @property
    def memory_cells(self) -> int:
        return self.width * self.depth


@dataclass
class FlowStats:
    """Exact per-flow statistics for a tracked (heavy) flow."""

    flow_id: str
    packets: int = 0
    bytes_kb: float = 0.0
    latency_ewma_us: float = 0.0

    def update(self, size_kb: float, hop_latency_us: float, alpha: float) -> None:
        self.packets += 1
        self.bytes_kb += size_kb
        if self.latency_ewma_us == 0.0:
            self.latency_ewma_us = hop_latency_us
        else:
            self.latency_ewma_us += alpha * (hop_latency_us - self.latency_ewma_us)


class FlowTelemetry:
    """Sketch-backed flow accounting with an exact heavy-hitter table.

    Every packet updates the sketch; a flow is promoted to the exact table
    once its estimated packet count crosses ``promote_threshold`` (and the
    table has room), mirroring how switch telemetry promotes elephants to
    exact counters.
    """

    def __init__(
        self,
        sketch_width: int = 1024,
        sketch_depth: int = 4,
        max_tracked_flows: int = 64,
        promote_threshold: int = 32,
        ewma_alpha: float = 0.2,
    ) -> None:
        if max_tracked_flows < 1:
            raise ConfigError("max_tracked_flows must be >= 1")
        if promote_threshold < 1:
            raise ConfigError("promote_threshold must be >= 1")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ConfigError("ewma_alpha must be in (0,1]")
        self.sketch = CountMinSketch(sketch_width, sketch_depth)
        self.max_tracked_flows = max_tracked_flows
        self.promote_threshold = promote_threshold
        self.ewma_alpha = ewma_alpha
        self._tracked: Dict[str, FlowStats] = {}
        self.packets_seen = 0
        self.promotions = 0

    def record(self, flow_id: str, size_kb: float, hop_latency_us: float) -> None:
        """Account one packet of ``flow_id`` crossing the switch."""
        self.packets_seen += 1
        self.sketch.add(flow_id)
        stats = self._tracked.get(flow_id)
        if stats is None:
            if (
                len(self._tracked) < self.max_tracked_flows
                and self.sketch.estimate(flow_id) >= self.promote_threshold
            ):
                stats = FlowStats(flow_id=flow_id)
                self._tracked[flow_id] = stats
                self.promotions += 1
            else:
                return
        stats.update(size_kb, hop_latency_us, self.ewma_alpha)

    def estimated_packets(self, flow_id: str) -> int:
        return self.sketch.estimate(flow_id)

    def tracked(self, flow_id: str) -> Optional[FlowStats]:
        return self._tracked.get(flow_id)

    def top_flows(self, k: int = 10) -> List[Tuple[str, int]]:
        """The k highest-volume *tracked* flows by exact packet count."""
        ranked = sorted(
            self._tracked.values(), key=lambda s: s.packets, reverse=True
        )
        return [(s.flow_id, s.packets) for s in ranked[:k]]

    def hot_flow_share(self) -> float:
        """Fraction of all packets attributed to tracked flows."""
        if self.packets_seen == 0:
            return 0.0
        tracked_packets = sum(s.packets for s in self._tracked.values())
        return tracked_packets / self.packets_seen
