"""The programmable ToR switch.

Models the Tofino data plane of the paper as a match-action pipeline:
two register-backed tables (replica table and destination table, Figure 5)
and the packet-processing workflow of Algorithm 1, including the single
packet recirculation needed to keep the two tables' GC state consistent
for soft GC requests.
"""

from repro.switch.controlplane import SwitchControlPlane
from repro.switch.dataplane import ForwardAction, ReplyAction, SwitchDataPlane
from repro.switch.pipeline import (
    MatchActionPipeline,
    StatefulAccess,
    rackblox_passes,
)
from repro.switch.tables import DestinationTable, ReplicaTable

__all__ = [
    "ReplicaTable",
    "DestinationTable",
    "SwitchDataPlane",
    "SwitchControlPlane",
    "ForwardAction",
    "ReplyAction",
    "MatchActionPipeline",
    "StatefulAccess",
    "rackblox_passes",
]
