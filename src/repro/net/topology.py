"""Multi-hop datacenter topology with per-hop INT accumulation.

Figure 1's hierarchy: servers connect to a ToR switch, ToRs to
aggregation switches, aggregation to core.  RackBlox measures ``Net_time``
as "the sum of per-hop latency in the switches, since the routing and
queuing latencies dominate" (§3.4) -- so the INT value a storage server
reads is exactly the sum each hop wrote as the packet passed.

The single-sample latency model in :class:`~repro.net.latency.LatencyProcess`
is the aggregate view; this module is the decomposed view, used to verify
that per-hop accumulation reconstructs the end-to-end figure and to build
multi-tier paths for cross-rack experiments.
"""

import random
from dataclasses import dataclass
from typing import Generator, List, Sequence

from repro.errors import ConfigError, NetworkError
from repro.net.int_telemetry import add_hop_latency
from repro.net.packet import Packet
from repro.sim import Simulator, Timeout


@dataclass(frozen=True)
class SwitchHop:
    """One switch on the path: routing + queuing latency distribution."""

    name: str
    #: Median per-hop latency (routing + typical queuing), microseconds.
    base_us: float
    #: Lognormal-ish jitter factor: samples fall in
    #: [base/(1+jitter), base*(1+jitter)] for moderate jitter.
    jitter: float = 0.3

    def __post_init__(self) -> None:
        if self.base_us <= 0:
            raise ConfigError(f"hop {self.name!r}: base_us must be positive")
        if self.jitter < 0:
            raise ConfigError(f"hop {self.name!r}: jitter must be >= 0")

    def sample(self, rng: random.Random) -> float:
        if self.jitter == 0:
            return self.base_us
        return self.base_us * rng.uniform(
            1.0 / (1.0 + self.jitter), 1.0 + self.jitter
        )


class NetworkPath:
    """An ordered sequence of switch hops between two endpoints."""

    def __init__(self, hops: Sequence[SwitchHop], rng: random.Random) -> None:
        if not hops:
            raise NetworkError("a path needs at least one hop")
        self.hops = list(hops)
        self._rng = rng
        self.packets_carried = 0

    def __len__(self) -> int:
        return len(self.hops)

    def expected_latency_us(self) -> float:
        return sum(hop.base_us for hop in self.hops)

    def sample_hops(self) -> List[float]:
        """One latency draw per hop (the values INT would record)."""
        return [hop.sample(self._rng) for hop in self.hops]

    def traverse(self, sim: Simulator, pkt: Packet) -> Generator:
        """Process: carry a packet across every hop, INT-stamping each.

        On completion ``pkt.lat`` has grown by exactly the sum of the
        per-hop samples -- the property §3.4 relies on.
        """
        for hop in self.hops:
            hop_latency = hop.sample(self._rng)
            yield Timeout(sim, hop_latency)
            add_hop_latency(pkt, hop_latency)
        self.packets_carried += 1


def fat_tree_path(
    rng: random.Random,
    cross_pod: bool = False,
    tor_us: float = 2.0,
    agg_us: float = 6.0,
    core_us: float = 12.0,
) -> NetworkPath:
    """A canonical client-to-rack path through the Figure 1 hierarchy.

    Intra-pod traffic climbs client-ToR -> aggregation -> rack-ToR;
    cross-pod traffic additionally crosses a core switch.
    """
    hops = [SwitchHop("client-tor", tor_us), SwitchHop("agg-up", agg_us)]
    if cross_pod:
        hops.append(SwitchHop("core", core_us))
        hops.append(SwitchHop("agg-down", agg_us))
    hops.append(SwitchHop("rack-tor", tor_us))
    return NetworkPath(hops, rng)
