"""The RackBlox packet format (Figure 6 and Table 1).

The RackBlox header rides inside the L4 payload of ordinary packets:

* ``OP`` (1 byte) -- one of the five operations in Table 1;
* ``vSSD_ID`` (4 bytes) -- the target vSSD;
* ``LAT`` (4 bytes) -- accumulated network latency in microseconds,
  filled in by In-band Network Telemetry as the packet crosses switches.

``gc_op`` packets carry a 1-byte ``gc`` field in the payload whose values
are given in §3.5: soft=0, regular=1, bg=2, accept=3, delay=4, finish=5.
"""

import enum
import itertools
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import NetworkError


class OpType(enum.IntEnum):
    """The five RackBlox operations (Table 1)."""

    CREATE_VSSD = 1
    DEL_VSSD = 2
    WRITE = 3
    READ = 4
    GC_OP = 5


class GcKind(enum.IntEnum):
    """Values of the ``gc`` payload field (§3.5.1)."""

    SOFT = 0
    REGULAR = 1
    BG = 2
    ACCEPT = 3
    DELAY = 4
    FINISH = 5


_HEADER = struct.Struct("!BIi")  # op, vssd_id, lat (us, rounded)
_packet_seq = itertools.count(1)


@dataclass
class Packet:
    """One RackBlox packet travelling through the simulated rack."""

    op: OpType
    vssd_id: int
    src: str = ""
    dst: str = ""
    #: Accumulated in-network latency (the LAT header field), microseconds.
    lat: float = 0.0
    #: Operation payload: ``gc`` kind, replica info for create_vssd, etc.
    payload: Dict[str, Any] = field(default_factory=dict)
    #: Application-payload size driving serialisation delay.
    size_kb: float = 0.1
    #: Simulated time the originating request was issued.
    issue_time: float = 0.0
    is_response: bool = False
    packet_id: int = field(default_factory=lambda: next(_packet_seq))

    def __post_init__(self) -> None:
        if not isinstance(self.op, OpType):
            raise NetworkError(f"op must be an OpType, got {self.op!r}")
        if self.vssd_id < 0 or self.vssd_id > 0xFFFFFFFF:
            raise NetworkError(f"vssd_id {self.vssd_id} does not fit in 4 bytes")

    @property
    def gc_kind(self) -> Optional[GcKind]:
        """The gc payload field, if this is a gc_op packet."""
        value = self.payload.get("gc")
        return GcKind(value) if value is not None else None

    def with_gc(self, kind: GcKind) -> "Packet":
        """Set the gc field in place (chainable)."""
        self.payload["gc"] = int(kind)
        return self

    def encode_header(self) -> bytes:
        """Pack the RackBlox header exactly as in Figure 6 (9 bytes)."""
        return _HEADER.pack(int(self.op), self.vssd_id, int(round(self.lat)))

    @classmethod
    def decode_header(cls, data: bytes) -> "Packet":
        """Parse a RackBlox header back into a packet skeleton."""
        if len(data) < _HEADER.size:
            raise NetworkError(
                f"header needs {_HEADER.size} bytes, got {len(data)}"
            )
        op_raw, vssd_id, lat = _HEADER.unpack_from(data)
        try:
            op = OpType(op_raw)
        except ValueError:
            raise NetworkError(f"unknown op code {op_raw}") from None
        return cls(op=op, vssd_id=vssd_id, lat=float(lat))

    def make_response(self, size_kb: Optional[float] = None) -> "Packet":
        """Build the reply packet: src/dst swapped, LAT carried forward."""
        return Packet(
            op=self.op,
            vssd_id=self.vssd_id,
            src=self.dst,
            dst=self.src,
            lat=self.lat,
            payload=dict(self.payload),
            size_kb=size_kb if size_kb is not None else self.size_kb,
            issue_time=self.issue_time,
            is_response=True,
        )


def read_request(vssd_id: int, src: str, dst: str, issue_time: float) -> Packet:
    """A 4KB read: tiny request, 4KB response."""
    return Packet(
        op=OpType.READ, vssd_id=vssd_id, src=src, dst=dst,
        size_kb=0.1, issue_time=issue_time,
    )


def write_request(vssd_id: int, src: str, dst: str, issue_time: float) -> Packet:
    """A 4KB write: 4KB request, tiny response."""
    return Packet(
        op=OpType.WRITE, vssd_id=vssd_id, src=src, dst=dst,
        size_kb=4.0, issue_time=issue_time,
    )


def gc_op(vssd_id: int, kind: GcKind, src: str, dst: str = "switch") -> Packet:
    """A gc_op control packet."""
    pkt = Packet(op=OpType.GC_OP, vssd_id=vssd_id, src=src, dst=dst)
    return pkt.with_gc(kind)


def create_vssd(
    vssd_id: int, server_ip: str, replica_vssd_id: int, replica_ip: str
) -> Packet:
    """The registration packet sent to the ToR switch on vSSD creation."""
    return Packet(
        op=OpType.CREATE_VSSD,
        vssd_id=vssd_id,
        src=server_ip,
        dst="switch",
        payload={
            "server_ip": server_ip,
            "replica_vssd_id": replica_vssd_id,
            "replica_ip": replica_ip,
        },
    )


def del_vssd(vssd_id: int, server_ip: str) -> Packet:
    """The deregistration packet removing a vSSD from the switch tables."""
    return Packet(op=OpType.DEL_VSSD, vssd_id=vssd_id, src=server_ip, dst="switch")
