"""Network substrate.

Implements the RackBlox packet format (Figure 6, Table 1), datacenter
latency models standing in for the paper's network traces (Fast / Medium /
Slow), In-band Network Telemetry accumulation, and the switch egress
schedulers evaluated in §4.5.2 (token bucket, fair queuing, priority).
"""

from repro.net.int_telemetry import add_hop_latency
from repro.net.latency import (
    FAST_NETWORK,
    MEDIUM_NETWORK,
    NETWORK_PROFILES,
    SLOW_NETWORK,
    LatencyProcess,
    NetworkProfile,
)
from repro.net.packet import GcKind, OpType, Packet
from repro.net.schedulers import (
    EgressPort,
    FairQueueScheduler,
    FifoScheduler,
    PriorityScheduler,
    TokenBucketScheduler,
)
from repro.net.topology import NetworkPath, SwitchHop, fat_tree_path

__all__ = [
    "OpType",
    "GcKind",
    "Packet",
    "NetworkProfile",
    "LatencyProcess",
    "FAST_NETWORK",
    "MEDIUM_NETWORK",
    "SLOW_NETWORK",
    "NETWORK_PROFILES",
    "add_hop_latency",
    "EgressPort",
    "FifoScheduler",
    "TokenBucketScheduler",
    "FairQueueScheduler",
    "PriorityScheduler",
    "SwitchHop",
    "NetworkPath",
    "fat_tree_path",
]
