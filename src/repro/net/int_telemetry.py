"""In-band Network Telemetry (INT).

RackBlox tracks ``Net_time`` by having each programmable switch add its
per-hop latency (routing + queuing dominate, per [24, 29]) into the LAT
field of the packet as it passes (§3.4).  The accumulated value reaches the
storage server inside the packet itself -- no control-plane involvement.
"""

from repro.errors import NetworkError
from repro.net.packet import Packet


def add_hop_latency(packet: Packet, hop_latency_us: float) -> Packet:
    """Accumulate one hop's latency into the packet's LAT field."""
    if hop_latency_us < 0:
        raise NetworkError(f"hop latency must be >= 0, got {hop_latency_us}")
    packet.lat += hop_latency_us
    return packet


def net_time(packet: Packet) -> float:
    """The Net_time component of the scheduling priority (§3.4)."""
    return packet.lat
