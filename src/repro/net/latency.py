"""Datacenter network latency models.

The paper emulates datacenter traffic with traces and published latency
distributions: a PTPmesh study (**Fast** [67]), tenant-level latency
requirements (**Medium** [59]), and AWS tenant measurements (**Slow** [32]),
scaling the first trace to the other two regimes (§3.7).

We reproduce the three regimes parametrically: a lognormal per-hop base
latency plus on/off congestion episodes that multiply latency while active.
Congestion episodes are what make the return-path prediction interesting --
the paper notes mispredictions cluster at the begin/end of congestion.
"""

import math
import random
from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigError
from repro.sim.core import MSEC


@dataclass(frozen=True)
class NetworkProfile:
    """Parameters of one latency regime (per direction, client<->server)."""

    name: str
    #: Median one-way latency in microseconds, uncongested.
    base_us: float
    #: Lognormal shape parameter (jitter).
    sigma: float
    #: Multiplier applied while a congestion episode is active.
    congestion_factor: float
    #: Mean congestion episode duration (microseconds).
    congestion_on_us: float
    #: Mean gap between congestion episodes (microseconds).
    congestion_off_us: float
    #: Per-packet straggler tail on the *client -> storage* direction:
    #: with this probability a packet is hit by incast/retransmission-style
    #: delay regardless of congestion state.  Fan-in toward the storage
    #: servers makes the request direction the incast-prone one, and these
    #: are precisely the packets whose inflated Net_time coordinated I/O
    #: scheduling can hide behind storage queueing.
    straggler_prob: float = 0.06
    #: Straggler probability on the return direction (one flow fanning
    #: back out -- much milder).
    return_straggler_prob: float = 0.01
    #: Mean multiplier applied to a straggler packet's latency.
    straggler_factor: float = 6.0

    def __post_init__(self) -> None:
        if self.base_us <= 0:
            raise ConfigError(f"base_us must be positive, got {self.base_us}")
        if self.congestion_factor < 1.0:
            raise ConfigError("congestion_factor must be >= 1")
        if not 0.0 <= self.straggler_prob < 1.0:
            raise ConfigError("straggler_prob must be in [0,1)")
        if not 0.0 <= self.return_straggler_prob < 1.0:
            raise ConfigError("return_straggler_prob must be in [0,1)")
        if self.straggler_factor < 1.0:
            raise ConfigError("straggler_factor must be >= 1")


#: PTPmesh-style low-latency fabric [67].
FAST_NETWORK = NetworkProfile(
    name="fast", base_us=25.0, sigma=0.30,
    congestion_factor=8.0, congestion_on_us=20 * MSEC, congestion_off_us=400 * MSEC,
)

#: Mid-range tenant latency regime [59].
MEDIUM_NETWORK = NetworkProfile(
    name="medium", base_us=120.0, sigma=0.35,
    congestion_factor=6.0, congestion_on_us=40 * MSEC, congestion_off_us=400 * MSEC,
)

#: Cloud-tenant (AWS-like) latency regime [32].
SLOW_NETWORK = NetworkProfile(
    name="slow", base_us=500.0, sigma=0.40,
    congestion_factor=5.0, congestion_on_us=80 * MSEC, congestion_off_us=400 * MSEC,
)

NETWORK_PROFILES: Dict[str, NetworkProfile] = {
    profile.name: profile
    for profile in (FAST_NETWORK, MEDIUM_NETWORK, SLOW_NETWORK)
}


def profile_by_name(name: str) -> NetworkProfile:
    """Look up a built-in network regime by name."""
    try:
        return NETWORK_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(NETWORK_PROFILES))
        raise ConfigError(f"unknown network profile {name!r} (known: {known})") from None


class LatencyProcess:
    """A stateful latency sampler with congestion episodes.

    The congestion on/off schedule is precomputed lazily from exponential
    holding times, so two samplers with the same seed agree on when the
    network is congested -- and the begin/end of episodes land at
    reproducible instants.
    """

    def __init__(self, profile: NetworkProfile, rng: random.Random) -> None:
        self.profile = profile
        self._rng = rng
        self._episode_rng = random.Random(rng.getrandbits(63))
        self._mu = math.log(profile.base_us)
        # Congestion schedule: list of (start, end) windows, extended lazily.
        self._windows = []
        self._horizon = 0.0
        # Fault-injection multiplier (link degradation / partition).
        # Applied without consuming RNG draws, so a factor of 1.0 is
        # byte-identical to a run with no degradation at all.
        self.degradation = 1.0

    def set_degradation(self, factor: float) -> None:
        """Scale every subsequent sample by ``factor`` (1.0 restores)."""
        if factor < 1.0:
            raise ConfigError(f"degradation factor must be >= 1, got {factor}")
        self.degradation = factor

    def _extend_schedule(self, until: float) -> None:
        while self._horizon <= until:
            gap = self._episode_rng.expovariate(1.0 / self.profile.congestion_off_us)
            duration = self._episode_rng.expovariate(1.0 / self.profile.congestion_on_us)
            start = self._horizon + gap
            end = start + duration
            self._windows.append((start, end))
            self._horizon = end

    def congested(self, now: float) -> bool:
        """Whether a congestion episode is active at simulated time ``now``."""
        self._extend_schedule(now)
        # Windows are ordered and sparse; scan the recent tail.
        for start, end in reversed(self._windows):
            if start <= now < end:
                return True
            if end < now:
                break
        return False

    def sample(self, now: float, direction: str = "out") -> float:
        """One-way network latency for a packet sent at ``now``.

        ``direction`` selects the straggler regime: ``"out"`` (toward the
        storage servers, incast-prone) or ``"ret"`` (back to the client).
        """
        draw = self._rng.lognormvariate(self._mu, self.profile.sigma)
        if self.congested(now):
            draw *= self.profile.congestion_factor
        prob = (
            self.profile.straggler_prob
            if direction == "out"
            else self.profile.return_straggler_prob
        )
        if prob > 0 and self._rng.random() < prob:
            # Exponentially distributed straggler magnitude around the
            # profile's mean factor.
            draw *= 1.0 + self._rng.expovariate(1.0 / self.profile.straggler_factor)
        return draw * self.degradation

    def expected_uncongested(self) -> float:
        """Mean of the uncongested lognormal (for scheduler deadline tuning)."""
        return math.exp(self._mu + self.profile.sigma**2 / 2.0)
