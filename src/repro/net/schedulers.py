"""Switch egress scheduling policies (§4.5.2).

The paper evaluates RackBlox under three network scheduling policies in the
ToR switch: **token-bucket rate limiting** (the VDC-style isolation
default), **fair queuing** across competing client flows, and **strict
priority** (where periodically generated high-priority traffic delays
storage requests).

An :class:`EgressPort` drains a policy object at a configurable line rate;
enqueued packets get an event that fires when their transmission completes,
so the queueing + serialisation delay lands in the packet's INT field.
"""

from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.net.packet import Packet
from repro.sim import Event, Simulator, Timeout


class FifoScheduler:
    """Baseline: one queue, first come first served."""

    def __init__(self) -> None:
        self._queue: Deque[Tuple[Packet, str, int]] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def enqueue(self, packet: Packet, flow_id: str, priority: int = 0) -> None:
        """Queue a packet (flow and priority ignored by FIFO)."""
        self._queue.append((packet, flow_id, priority))

    def next(self, now: float) -> Optional[Tuple[Packet, float]]:
        """Head packet and the earliest time it may start transmitting."""
        if not self._queue:
            return None
        packet, _, _ = self._queue.popleft()
        return packet, now


class TokenBucketScheduler:
    """Per-flow token buckets (the paper's TB / VDC isolation policy).

    Each flow may transmit a packet only when its bucket holds enough
    tokens (one token per KB).  Among eligible flows the earliest-eligible
    head-of-line packet wins, so a flow exceeding its rate is delayed
    without blocking others.
    """

    def __init__(self, flow_rate_kb_per_sec: float, burst_kb: float = 64.0) -> None:
        if flow_rate_kb_per_sec <= 0 or burst_kb <= 0:
            raise ConfigError("flow rate and burst must be positive")
        self.flow_rate = flow_rate_kb_per_sec
        self.burst_kb = burst_kb
        self._queues: "OrderedDict[str, Deque[Packet]]" = OrderedDict()
        self._tokens: Dict[str, float] = {}
        self._last_refill: Dict[str, float] = {}

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def enqueue(self, packet: Packet, flow_id: str, priority: int = 0) -> None:
        """Queue a packet on its flow (buckets created lazily)."""
        self._queues.setdefault(flow_id, deque()).append(packet)
        self._tokens.setdefault(flow_id, self.burst_kb)
        self._last_refill.setdefault(flow_id, 0.0)

    def _refill(self, flow_id: str, now: float) -> None:
        elapsed_sec = (now - self._last_refill[flow_id]) / 1e6
        if elapsed_sec > 0:
            self._tokens[flow_id] = min(
                self.burst_kb, self._tokens[flow_id] + elapsed_sec * self.flow_rate
            )
            self._last_refill[flow_id] = now

    def next(self, now: float) -> Optional[Tuple[Packet, float]]:
        """Earliest token-eligible head-of-line packet across flows."""
        best: Optional[Tuple[float, str]] = None
        for flow_id, queue in self._queues.items():
            if not queue:
                continue
            self._refill(flow_id, now)
            need = queue[0].size_kb
            have = self._tokens[flow_id]
            if have >= need:
                ready = now
            else:
                ready = now + (need - have) / self.flow_rate * 1e6
            if best is None or ready < best[0]:
                best = (ready, flow_id)
        if best is None:
            return None
        ready, flow_id = best
        packet = self._queues[flow_id].popleft()
        # Charge the bucket (may go slightly negative until ready time).
        self._refill(flow_id, now)
        self._tokens[flow_id] -= packet.size_kb
        return packet, ready


class FairQueueScheduler:
    """Packet-wise round-robin fair queuing across flows.

    Approximates the switch's FQ policy: every backlogged flow gets an
    equal share of transmission opportunities (equal-size storage packets
    make packet-fair and byte-fair equivalent).
    """

    def __init__(self) -> None:
        self._queues: "OrderedDict[str, Deque[Packet]]" = OrderedDict()
        self._rotation: Deque[str] = deque()

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def enqueue(self, packet: Packet, flow_id: str, priority: int = 0) -> None:
        """Queue a packet on its flow and keep it in the service rotation."""
        if flow_id not in self._queues:
            self._queues[flow_id] = deque()
        if not self._queues[flow_id] and flow_id not in self._rotation:
            self._rotation.append(flow_id)
        elif flow_id not in self._rotation:
            self._rotation.append(flow_id)
        self._queues[flow_id].append(packet)

    def next(self, now: float) -> Optional[Tuple[Packet, float]]:
        """Round-robin across backlogged flows."""
        while self._rotation:
            flow_id = self._rotation.popleft()
            queue = self._queues.get(flow_id)
            if not queue:
                continue
            packet = queue.popleft()
            if queue:
                self._rotation.append(flow_id)
            return packet, now
        return None


class PriorityScheduler:
    """Strict priority: lower priority number transmits first.

    The §4.5.2 experiment periodically injects high-priority traffic that
    delays storage requests -- exactly the behaviour a strict-priority
    scheduler produces.
    """

    def __init__(self, levels: int = 8) -> None:
        if levels < 1:
            raise ConfigError("need at least one priority level")
        self._queues = [deque() for _ in range(levels)]  # type: ignore[var-annotated]
        self.levels = levels

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues)

    def enqueue(self, packet: Packet, flow_id: str, priority: int = 0) -> None:
        """Queue at the given priority level (0 = highest)."""
        if not 0 <= priority < self.levels:
            raise ConfigError(
                f"priority {priority} out of range [0,{self.levels})"
            )
        self._queues[priority].append(packet)

    def next(self, now: float) -> Optional[Tuple[Packet, float]]:
        """Strictly highest-priority first, FIFO within a level."""
        for queue in self._queues:
            if queue:
                return queue.popleft(), now
        return None


class EgressPort:
    """One switch egress port: a scheduler drained at line rate.

    ``enqueue`` returns an event that fires when the packet has fully left
    the port; the elapsed time (queueing + serialisation) is what INT
    records as this hop's latency.
    """

    def __init__(
        self,
        sim: Simulator,
        scheduler,
        rate_kb_per_us: float = 6.25,  # ~50 Gb/s, the testbed's NIC speed
        on_transmit: Optional[Callable[[Packet, float], None]] = None,
    ) -> None:
        if rate_kb_per_us <= 0:
            raise ConfigError("line rate must be positive")
        self.sim = sim
        self.scheduler = scheduler
        self.rate = rate_kb_per_us
        self.on_transmit = on_transmit
        self._arrival: Optional[Event] = None
        self._completions: Dict[int, Event] = {}
        self._busy = False
        self.packets_sent = 0
        sim.spawn(self._serve())

    def enqueue(self, packet: Packet, flow_id: str = "default", priority: int = 0) -> Event:
        done = Event(self.sim)
        self._completions[packet.packet_id] = done
        self.scheduler.enqueue(packet, flow_id, priority)
        if self._arrival is not None and not self._arrival.triggered:
            self._arrival.succeed()
        return done

    @property
    def queue_depth(self) -> int:
        return len(self.scheduler)

    def _serve(self):
        while True:
            entry = self.scheduler.next(self.sim.now)
            if entry is None:
                self._arrival = Event(self.sim)
                yield self._arrival
                self._arrival = None
                continue
            packet, ready = entry
            # One combined wait for pacing delay + serialization: the
            # completion instant is identical to waiting them separately.
            wait = packet.size_kb / self.rate
            if ready > self.sim.now:
                wait += ready - self.sim.now
            yield Timeout(self.sim, wait)
            self.packets_sent += 1
            done = self._completions.pop(packet.packet_id, None)
            if self.on_transmit is not None:
                self.on_transmit(packet, self.sim.now)
            if done is not None:
                done.succeed(packet)
