"""The VDC controller (§4.1).

VDC runs "a logically centralized controller that allocates resources to
each tenant's VDC as well as each tenant's I/O flows", enforcing isolation
with multi-resource token-bucket rate limiting.  The controller lives on a
separate server, so every interaction costs an in-rack round trip plus
host software overhead.

For RackBlox (Software) the controller is additionally made **GC-aware**:
it mirrors the switch's admission logic (accept / delay) in software and,
when granting GC, returns the location of a replica that is *not*
collecting so the server can redirect reads itself.
"""

from typing import Dict, Generator, Optional, Tuple

from repro.errors import ConfigError
from repro.sim import Simulator, Timeout
from repro.sim.core import MSEC


class VdcController:
    """Centralized flow/GC controller running on its own server."""

    #: One-way latency to reach the controller: two in-rack wire hops
    #: (server -> ToR -> controller server) plus kernel/IPC overhead.
    ONE_WAY_US = 60.0
    #: Controller-side processing per request.
    PROCESSING_US = 15.0

    def __init__(
        self,
        sim: Simulator,
        epoch_us: float = 100 * MSEC,
        gc_aware: bool = False,
        latency_fn=None,
    ) -> None:
        if epoch_us <= 0:
            raise ConfigError("epoch must be positive")
        self.sim = sim
        self.epoch_us = epoch_us
        self.gc_aware = gc_aware
        #: One-way network latency sampler; defaults to the fixed in-rack
        #: constant when the controller is used standalone in tests.
        self.latency_fn = latency_fn
        #: Software mirror of the switch's GC state: vssd_id -> collecting?
        self._gc_state: Dict[int, bool] = {}
        #: vssd_id -> (replica_vssd_id, replica_server_ip)
        self._replicas: Dict[int, Tuple[int, str]] = {}
        #: Flow demand counters, refreshed each epoch into rate allocations.
        self._demand: Dict[str, int] = {}
        self.allocations: Dict[str, float] = {}
        self.epochs = 0
        self.gc_requests = 0
        self.gc_delays = 0
        sim.spawn(self._epoch_loop())

    # ----------------------------------------------------------- flow side

    def note_demand(self, flow_id: str, ops: int = 1) -> None:
        """Servers report per-flow demand; folded in at the next epoch."""
        self._demand[flow_id] = self._demand.get(flow_id, 0) + ops

    def _epoch_loop(self) -> Generator:
        while True:
            yield Timeout(self.sim, self.epoch_us)
            self.epochs += 1
            total = sum(self._demand.values())
            if total > 0:
                self.allocations = {
                    flow: ops / total for flow, ops in self._demand.items()
                }
            self._demand.clear()

    # ------------------------------------------------------------- GC side

    def register_pair(
        self, vssd_id: int, replica_vssd_id: int, replica_server_ip: str
    ) -> None:
        self._replicas[vssd_id] = (replica_vssd_id, replica_server_ip)
        self._gc_state.setdefault(vssd_id, False)
        self._gc_state.setdefault(replica_vssd_id, False)

    def _one_way(self) -> float:
        if self.latency_fn is not None:
            return self.latency_fn()
        return self.ONE_WAY_US

    def round_trip(self) -> Generator:
        """Process: one request/response exchange with the controller."""
        yield Timeout(self.sim, self._one_way())
        yield Timeout(self.sim, self.PROCESSING_US)
        yield Timeout(self.sim, self._one_way())

    def decide_gc(self, vssd_id: int, kind: str) -> Tuple[str, Optional[str]]:
        """Software re-implementation of the switch's admission logic.

        Returns (verdict, redirect_ip): the verdict is ``accept`` or
        ``delay``; on accept the controller also hands back the replica
        server to redirect reads to (None when the controller is not
        GC-aware -- plain VDC never delays or redirects).
        """
        self.gc_requests += 1
        if not self.gc_aware:
            return "accept", None
        if vssd_id not in self._replicas:
            raise ConfigError(f"vSSD {vssd_id} not registered with controller")
        replica_id, replica_ip = self._replicas[vssd_id]
        if kind == "soft" and self._gc_state.get(replica_id, False):
            self.gc_delays += 1
            return "delay", None
        self._gc_state[vssd_id] = True
        return "accept", replica_ip

    def finish_gc(self, vssd_id: int) -> None:
        self._gc_state[vssd_id] = False

    def is_collecting(self, vssd_id: int) -> bool:
        return self._gc_state.get(vssd_id, False)

    def replica_of(self, vssd_id: int) -> Optional[Tuple[int, str]]:
        return self._replicas.get(vssd_id)
