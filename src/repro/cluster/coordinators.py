"""GC coordinators: how a server's GC monitor reaches the admission logic.

Three implementations exist across the evaluated systems:

* :class:`~repro.server.gc_monitor.LocalGcCoordinator` -- no coordination
  (VDC and the Coord-I/O ablation): GC always runs immediately.
* :class:`SwitchGcCoordinator` -- RackBlox: gc_op packets to the ToR
  switch's data plane; in-rack wire hops plus (for soft requests) one
  recirculation.
* :class:`ControllerGcCoordinator` -- RackBlox (Software): the same
  admission decisions made by the VDC controller in software, paying a
  controller round trip per request.
"""

import random
from typing import Generator, Optional

from repro.cluster.controller import VdcController
from repro.net.packet import GcKind, gc_op
from repro.sim import Simulator, Timeout
from repro.switch.dataplane import SwitchDataPlane
from repro.vssd.vssd import VSsd

#: One-way server <-> ToR wire + serialisation time inside the rack.
IN_RACK_HOP_US = 5.0

_KIND_TO_GC = {"soft": GcKind.SOFT, "regular": GcKind.REGULAR, "bg": GcKind.BG}


class SwitchGcCoordinator:
    """RackBlox: GC admission by the switch data plane (Algorithm 1)."""

    def __init__(
        self,
        sim: Simulator,
        dataplane: SwitchDataPlane,
        server_ip: str,
        drop_rng: Optional[random.Random] = None,
        drop_probability: float = 0.0,
    ) -> None:
        self.sim = sim
        self.dataplane = dataplane
        self.server_ip = server_ip
        self._drop_rng = drop_rng
        self.drop_probability = drop_probability
        self.packets_sent = 0
        self.packets_dropped = 0

    def _maybe_drop(self) -> bool:
        if self.drop_probability <= 0 or self._drop_rng is None:
            return False
        return self._drop_rng.random() < self.drop_probability

    def request_gc(self, vssd: VSsd, kind: str) -> Generator:
        """Process: send a gc_op and return 'accept' / 'delay' / 'lost'."""
        pkt = gc_op(vssd.vssd_id, _KIND_TO_GC[kind], src=self.server_ip)
        self.packets_sent += 1
        yield Timeout(self.sim, IN_RACK_HOP_US)
        if self._maybe_drop():
            # Link/switch failure: the ack never arrives; the monitor's
            # retry logic (3 tries for regular GC) takes over.
            self.packets_dropped += 1
            return "lost"
        action = self.dataplane.process_packet(pkt)
        yield Timeout(
            self.sim,
            self.dataplane.gc_op_delay_us(_KIND_TO_GC[kind]) + IN_RACK_HOP_US,
        )
        reply = action.packet.gc_kind
        return "accept" if reply is GcKind.ACCEPT else "delay"

    def notify_finish(self, vssd: VSsd) -> Generator:
        pkt = gc_op(vssd.vssd_id, GcKind.FINISH, src=self.server_ip)
        self.packets_sent += 1
        yield Timeout(self.sim, IN_RACK_HOP_US)
        if not self._maybe_drop():
            self.dataplane.process_packet(pkt)

    def notify_background(self, vssd: VSsd) -> Generator:
        """Background GC runs without approval; the switch is only told so
        it starts redirecting reads (§3.5.1)."""
        pkt = gc_op(vssd.vssd_id, GcKind.BG, src=self.server_ip)
        self.packets_sent += 1
        yield Timeout(self.sim, IN_RACK_HOP_US)
        if not self._maybe_drop():
            self.dataplane.process_packet(pkt)


class ControllerGcCoordinator:
    """RackBlox (Software): admission via the centralized controller."""

    def __init__(self, sim: Simulator, controller: VdcController, server_ip: str) -> None:
        self.sim = sim
        self.controller = controller
        self.server_ip = server_ip
        #: Last redirect target granted by the controller, per vSSD --
        #: the server's software-redirect hook reads this.
        self.redirect_targets = {}

    def request_gc(self, vssd: VSsd, kind: str) -> Generator:
        yield self.sim.spawn(self.controller.round_trip())
        verdict, redirect_ip = self.controller.decide_gc(vssd.vssd_id, kind)
        if verdict == "accept" and redirect_ip is not None:
            self.redirect_targets[vssd.vssd_id] = redirect_ip
        return verdict

    def notify_finish(self, vssd: VSsd) -> Generator:
        # Fire-and-forget: one-way message to the controller.
        yield Timeout(self.sim, self.controller.ONE_WAY_US)
        self.controller.finish_gc(vssd.vssd_id)
        self.redirect_targets.pop(vssd.vssd_id, None)

    def notify_background(self, vssd: VSsd) -> Generator:
        yield Timeout(self.sim, self.controller.ONE_WAY_US)
        _, redirect_ip = self.controller.decide_gc(vssd.vssd_id, "bg")
        if redirect_ip is not None:
            self.redirect_targets[vssd.vssd_id] = redirect_ip
