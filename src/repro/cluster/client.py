"""Workload clients.

One client drives one replica pair, open-loop (Poisson arrivals): reads go
to the primary vSSD (the switch may redirect them), writes fan out to both
in-rack replicas and complete when *all* replicas hold a DRAM copy
(§3.5.1's durability semantics).
"""

from typing import Generator, Optional

from repro.cluster.rack import Rack
from repro.cluster.replication import ReplicaPair
from repro.errors import ConfigError
from repro.metrics.collector import ExperimentMetrics
from repro.sim import Event, Timeout
from repro.workloads.generator import OpenLoopGenerator, Request


class Client:
    """An open-loop client bound to one replica pair."""

    def __init__(
        self,
        rack: Rack,
        name: str,
        pair: ReplicaPair,
        generator: OpenLoopGenerator,
        metrics: ExperimentMetrics,
        working_set_fraction: float = 0.5,
    ) -> None:
        self.rack = rack
        self.sim = rack.sim
        self.name = name
        self.pair = pair
        self.generator = generator
        self.metrics = metrics
        self.key_space = rack.working_set_pages(pair, working_set_fraction)
        self.issued = 0
        self.completed = 0
        self._drained: Optional[Event] = None

    def run(self, num_requests: int) -> Generator:
        """Process: issue ``num_requests`` and wait for every response."""
        if num_requests <= 0:
            raise ConfigError(f"num_requests must be positive, got {num_requests}")
        for request in self.generator.requests(num_requests):
            yield Timeout(self.sim, request.gap_us)
            self.issued += 1
            self.sim.spawn(self._issue(request))
        while self.completed < self.issued:
            self._drained = Event(self.sim)
            yield self._drained
        return self.completed

    def _note_done(self) -> None:
        self.completed += 1
        if self._drained is not None and not self._drained.triggered:
            self._drained.succeed()

    def _issue(self, request: Request) -> Generator:
        lpn = request.lpn % self.key_space
        if request.kind == "read":
            yield self.sim.spawn(self._issue_read(lpn))
        else:
            yield self.sim.spawn(self._issue_write(lpn))

    def _issue_read(self, lpn: int) -> Generator:
        t0 = self.sim.now
        response = yield self.rack.issue_read(self.pair, lpn, client=self.name)
        storage_us = response.payload.get("storage_us")
        self.metrics.record(
            "read", self.sim.now - t0, at=self.sim.now, storage_us=storage_us
        )
        self._note_done()

    def _issue_write(self, lpn: int) -> Generator:
        # Writes are issued to all replicas and complete when every replica
        # has the DRAM copy (the write-cache admission ack).  Replicas the
        # failure detector has declared dead are skipped -- the membership
        # view clients get from the heartbeat machinery.
        t0 = self.sim.now
        responses = yield self.rack.issue_write(self.pair, lpn, client=self.name)
        if not responses:
            # Both in-rack replicas are down; the out-of-rack replica (out
            # of scope here) would take over.  Count the op as done so the
            # client can drain.
            self._note_done()
            return
        storage_us = max(
            (r.payload.get("storage_us", 0.0) for r in responses), default=None
        )
        self.metrics.record(
            "write", self.sim.now - t0, at=self.sim.now, storage_us=storage_us
        )
        self._note_done()
