"""Rack assembly: clients, ToR switch, storage servers, and baselines.

:class:`~repro.cluster.rack.Rack` wires the full end-to-end path of the
paper's testbed (§3.7): clients emulating datacenter network latency, the
programmable ToR switch running Algorithm 1, and storage servers running
Algorithm 2 -- configurable as any of the four evaluated systems (VDC,
RackBlox (Software), RackBlox, and the RackBlox-Coord I/O ablation).
"""

from repro.cluster.client import Client
from repro.cluster.config import RackConfig, SystemType
from repro.cluster.consistency import HermesCluster, HermesReplica, Timestamp
from repro.cluster.multirack import CrossRackEntry, MultiRackFabric
from repro.cluster.controller import VdcController
from repro.cluster.coordinators import (
    ControllerGcCoordinator,
    SwitchGcCoordinator,
)
from repro.cluster.failures import FailureManager
from repro.cluster.rack import Rack
from repro.cluster.replication import ReplicaPair, rack_aware_placement

__all__ = [
    "SystemType",
    "RackConfig",
    "Rack",
    "Client",
    "VdcController",
    "SwitchGcCoordinator",
    "ControllerGcCoordinator",
    "ReplicaPair",
    "rack_aware_placement",
    "FailureManager",
    "HermesCluster",
    "HermesReplica",
    "Timestamp",
    "MultiRackFabric",
    "CrossRackEntry",
]
