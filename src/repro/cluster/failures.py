"""Failure detection and handling (§3.7, "Others").

Like modern rack-scale storage systems, RackBlox detects failures with
heartbeats.  On server (or link) failure, requests are redirected to the
in-rack replicas -- conveniently through the *same* mechanism as
coordinated GC: setting the dead vSSDs' GC bits in the switch tables makes
Algorithm 1 steer reads to the replica with no new data-plane logic.  On
switch failure, the tables are repopulated from the control plane's
registration log once the switch recovers.

"On server failure, RackBlox replicates the replicas to other servers and
updates their switches": :meth:`FailureManager.rereplicate_pair` restores
the replication factor by building a fresh vSSD on a healthy server,
copying the surviving replica's live data (timed reads + writes through
the flash channels), and re-registering the pair in the switch tables.
"""

from typing import Dict, Generator, Optional, Set

from repro.cluster.rack import Rack
from repro.cluster.replication import ReplicaPair
from repro.errors import ConfigError
from repro.flash.gc import GreedyGcPolicy
from repro.flash.ssd import Ssd
from repro.sim import Timeout
from repro.sim.core import MSEC
from repro.switch.dataplane import SwitchDataPlane
from repro.vssd.allocator import VssdAllocator


class FailureManager:
    """Heartbeat-driven failure detection for one rack."""

    def __init__(
        self,
        rack: Rack,
        heartbeat_interval_us: float = 10 * MSEC,
        miss_threshold: int = 3,
    ) -> None:
        if heartbeat_interval_us <= 0:
            raise ConfigError("heartbeat interval must be positive")
        if miss_threshold < 1:
            raise ConfigError("miss threshold must be >= 1")
        self.rack = rack
        self.sim = rack.sim
        self.heartbeat_interval_us = heartbeat_interval_us
        self.miss_threshold = miss_threshold
        self._missed: Dict[str, int] = {s.ip: 0 for s in rack.servers}
        self._handled: Set[str] = set()
        self.failures_detected = 0
        self.recoveries = 0
        self.rereplications = 0
        # Sim timestamps of detections/recoveries, for MTTR accounting.
        self.detected_at: Dict[str, float] = {}
        self.recovered_at: Dict[str, float] = {}
        self._running = False
        self._process = None

    def start(self) -> None:
        """Start the heartbeat loop (idempotent while running)."""
        self._running = True
        if self._process is not None and self._process.is_alive:
            # One loop is plenty: a restart before the stopped loop drained
            # its final timeout just re-arms it instead of stacking loops.
            return
        self._process = self.sim.spawn(self._heartbeat_loop())

    def stop(self) -> None:
        """Ask the heartbeat loop to exit at its next tick (idempotent).

        After the loop wakes once more it returns, so detaching a rack
        (e.g. when the live service shuts a bridge down) does not leak a
        perpetual sim process that would keep the event heap busy forever.
        """
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def _heartbeat_loop(self) -> Generator:
        while self._running:
            yield Timeout(self.sim, self.heartbeat_interval_us)
            if not self._running:
                return
            for server in self.rack.servers:
                # rack.servers can grow after construction (re-replication
                # targets); default unseen IPs to zero misses so brand-new
                # servers are health-checked from their first tick.
                if server.alive:
                    self._missed[server.ip] = 0
                    continue
                missed = self._missed.get(server.ip, 0) + 1
                self._missed[server.ip] = missed
                if missed >= self.miss_threshold and server.ip not in self._handled:
                    self._on_server_failure(server.ip)

    @property
    def detection_delay_us(self) -> float:
        """Worst-case time from crash to detection."""
        return self.heartbeat_interval_us * (self.miss_threshold + 1)

    # ------------------------------------------------------------- injection

    def fail_server(self, ip: str) -> None:
        """Crash a server: it stops processing and answering packets."""
        server = self.rack.server_by_ip.get(ip)
        if server is None:
            raise ConfigError(f"no server with ip {ip}")
        server.alive = False

    def recover_server(self, ip: str) -> None:
        """Bring a server back; its vSSDs serve again after bits clear."""
        server = self.rack.server_by_ip.get(ip)
        if server is None:
            raise ConfigError(f"no server with ip {ip}")
        server.alive = True
        self._missed[ip] = 0
        if ip in self._handled:
            self._handled.discard(ip)
            for vssd in server.vssds:
                if vssd.vssd_id in self.rack.switch.replica_table:
                    self.rack.switch.replica_table.set_gc_status(vssd.vssd_id, 0)
                    self.rack.switch.destination_table.set_gc_status(vssd.vssd_id, 0)
            self.rack.failed_ips.discard(ip)
            self.recoveries += 1
            self.recovered_at[ip] = self.sim.now

    def _on_server_failure(self, ip: str) -> None:
        """Redirect the dead server's vSSDs to their replicas."""
        self._handled.add(ip)
        self.failures_detected += 1
        self.detected_at[ip] = self.sim.now
        self.rack.failed_ips.add(ip)
        server = self.rack.server_by_ip[ip]
        for vssd in server.vssds:
            if vssd.vssd_id in self.rack.switch.replica_table:
                # Reuse the coordinated-GC redirection path: a set GC bit
                # makes Algorithm 1 send reads to the replica.
                self.rack.switch.replica_table.set_gc_status(vssd.vssd_id, 1)
                self.rack.switch.destination_table.set_gc_status(vssd.vssd_id, 1)

    # -------------------------------------------------------- re-replication

    def rereplicate_pair(
        self, pair: ReplicaPair, target_ip: Optional[str] = None
    ) -> Generator:
        """Process: restore a pair's replication factor after a failure.

        The dead member is replaced by a fresh vSSD on ``target_ip`` (or
        the least-loaded healthy server that holds neither copy).  Live
        data is copied from the surviving replica -- each mapped page is
        a timed read on the survivor plus a timed write on the new vSSD,
        so re-replication competes with foreground traffic exactly as it
        would in production.  Finishes by re-registering the pair in the
        switch tables and clearing the fail-over redirection bits.
        """
        rack = self.rack
        dead_ip, survivor, dead_vssd = self._locate_dead_member(pair)
        target = self._pick_target(pair, target_ip)
        config = rack.config
        ssd = Ssd(
            self.sim,
            ssd_id=f"ssd-rerepl-{pair.name}-{dead_vssd.vssd_id}",
            geometry=config.vssd_geometry,
            profile=config.device_profile,
        )
        allocator = VssdAllocator(ssd)
        new_vssd = allocator.create_hardware_isolated(
            f"{pair.name}-rebuilt",
            channels=list(range(config.vssd_geometry.channels)),
            overprovision=config.overprovision,
            gc_policy=GreedyGcPolicy(
                gc_threshold=config.gc_threshold,
                soft_threshold=config.soft_threshold,
            ),
        )
        target.host_vssd(new_vssd)
        # Copy the survivor's live pages: read there, write here.
        copied = 0
        for lpn in sorted(survivor.ftl._map):  # noqa: SLF001 - rebuild walks the map
            yield self.sim.spawn(survivor.read(lpn))
            yield self.sim.spawn(new_vssd.write(lpn))
            copied += 1
        # Rewire the pair object and the rack's lookup tables.
        if pair.primary is dead_vssd:
            pair.primary = new_vssd
            pair.primary_server_ip = target.ip
        else:
            pair.replica = new_vssd
            pair.replica_server_ip = target.ip
        rack.pair_by_vssd.pop(dead_vssd.vssd_id, None)
        rack.pair_by_vssd[new_vssd.vssd_id] = pair
        rack.vssd_by_id.pop(dead_vssd.vssd_id, None)
        rack.vssd_by_id[new_vssd.vssd_id] = new_vssd
        # Update the switch: deregister the dead member, register the new
        # one, and point the survivor's replica entry at it.
        if dead_vssd.vssd_id in rack.switch.replica_table:
            rack.switch.replica_table.remove(dead_vssd.vssd_id)
        if dead_vssd.vssd_id in rack.switch.destination_table:
            rack.switch.destination_table.remove(dead_vssd.vssd_id)
        rack.switch.replica_table.insert(new_vssd.vssd_id, survivor.vssd_id)
        rack.switch.destination_table.insert(new_vssd.vssd_id, target.ip)
        surviving_entry = rack.switch.replica_table.get(survivor.vssd_id)
        if surviving_entry is not None:
            surviving_entry.replica_vssd_id = new_vssd.vssd_id
            rack.switch.replica_table.set_gc_status(survivor.vssd_id, 0)
            rack.switch.destination_table.set_gc_status(survivor.vssd_id, 0)
        # Keep the control plane's registration log in step: a later
        # switch reboot repopulates the tables from it, so it must name
        # the rebuilt member, not the dead one.
        rack.control_plane.replace_registration(
            dead_vssd.vssd_id, new_vssd.vssd_id, target.ip
        )
        self.rereplications += 1
        return copied

    def _locate_dead_member(self, pair: ReplicaPair):
        primary_dead = pair.primary_server_ip in self.rack.failed_ips
        replica_dead = pair.replica_server_ip in self.rack.failed_ips
        if primary_dead == replica_dead:
            raise ConfigError(
                f"pair {pair.name!r}: exactly one member must be on a failed "
                f"server (primary dead={primary_dead}, replica dead={replica_dead})"
            )
        if primary_dead:
            return pair.primary_server_ip, pair.replica, pair.primary
        return pair.replica_server_ip, pair.primary, pair.replica

    def _pick_target(self, pair: ReplicaPair, target_ip: Optional[str]):
        rack = self.rack
        if target_ip is not None:
            server = rack.server_by_ip.get(target_ip)
            if server is None or not server.alive:
                raise ConfigError(f"target {target_ip!r} is unknown or dead")
            return server
        exclude = {pair.primary_server_ip, pair.replica_server_ip}
        candidates = [
            s for s in rack.servers
            if s.alive and s.ip not in rack.failed_ips and s.ip not in exclude
        ]
        if not candidates:
            raise ConfigError("no healthy server available for re-replication")
        return min(candidates, key=lambda s: len(s.vssds))

    # ------------------------------------------------------------- switch

    def fail_and_recover_switch(self) -> None:
        """Replace the ToR data plane and repopulate it (switch reboot).

        The control plane's registration log rebuilds both tables with GC
        state reinitialised -- any in-flight GC admission is re-requested
        by the servers' periodic monitors.
        """
        fresh = SwitchDataPlane()
        self.rack.control_plane.repopulate(fresh)
        self.rack.switch = fresh
        for coordinator in self.rack._gc_coordinators.values():  # noqa: SLF001
            if hasattr(coordinator, "dataplane"):
                coordinator.dataplane = fresh
        # Repopulation reinitialises GC state, which would also forget
        # fail-over redirects for servers that are still down: re-arm
        # their vSSDs' bits so reads keep steering to the replicas.
        for ip in sorted(self._handled):
            server = self.rack.server_by_ip.get(ip)
            if server is None:
                continue
            for vssd in server.vssds:
                if vssd.vssd_id in fresh.replica_table:
                    fresh.replica_table.set_gc_status(vssd.vssd_id, 1)
                    fresh.destination_table.set_gc_status(vssd.vssd_id, 1)
