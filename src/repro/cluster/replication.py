"""Replica placement (§3.3, §3.5.1).

RackBlox replicates at vSSD granularity with rack-aware placement: two
replicas inside the rack on different servers (plus one in another rack,
which is outside the intra-rack scheduling scope of the paper and of this
reproduction).  Writes go to every replica; reads go to the primary unless
the switch (or the software layer) redirects them.
"""

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigError
from repro.vssd.vssd import VSsd


@dataclass
class ReplicaPair:
    """One replicated vSSD: the in-rack primary and its in-rack replica."""

    name: str
    primary: VSsd
    replica: VSsd
    primary_server_ip: str
    replica_server_ip: str

    def __post_init__(self) -> None:
        if self.primary.vssd_id == self.replica.vssd_id:
            raise ConfigError("a vSSD cannot replicate to itself")
        if self.primary_server_ip == self.replica_server_ip:
            raise ConfigError(
                f"pair {self.name!r}: replicas must live on different servers "
                "(rack-aware placement)"
            )

    @property
    def vssds(self) -> List[VSsd]:
        return [self.primary, self.replica]

    def peer_of(self, vssd_id: int) -> VSsd:
        if vssd_id == self.primary.vssd_id:
            return self.replica
        if vssd_id == self.replica.vssd_id:
            return self.primary
        raise ConfigError(f"vSSD {vssd_id} is not part of pair {self.name!r}")


def rack_aware_placement(num_pairs: int, num_servers: int) -> List[tuple]:
    """(primary_server, replica_server) indices for each pair.

    Primaries round-robin across servers; each replica lands on the next
    server, so no server holds both copies of a pair.
    """
    if num_servers < 2:
        raise ConfigError("rack-aware placement needs at least 2 servers")
    if num_pairs < 1:
        raise ConfigError("need at least one pair")
    return [
        (i % num_servers, (i + 1) % num_servers)
        for i in range(num_pairs)
    ]
