"""Experiment configuration: the systems under test and rack parameters."""

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.chaos.schedule import FaultSchedule
from repro.errors import ConfigError
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import DeviceProfile, PSSD
from repro.net.latency import MEDIUM_NETWORK, NetworkProfile
from repro.sim.core import MSEC


class SystemType(enum.Enum):
    """The four systems of the paper's evaluation (§4.1, §4.4)."""

    #: Virtual datacenter: centralized controller, token-bucket end-to-end
    #: isolation, no visibility into SSD GC.
    VDC = "vdc"
    #: VDC extended with software coordinated I/O scheduling and
    #: controller-mediated coordinated GC (extra round trips).
    RACKBLOX_SOFTWARE = "rackblox-software"
    #: The full system: switch-resident GC state, in-network redirection.
    RACKBLOX = "rackblox"
    #: Ablation: coordinated I/O scheduling only, GC uncoordinated (§4.4).
    RACKBLOX_COORD_IO = "rackblox-coord-io"

    @property
    def coordinates_io(self) -> bool:
        return self is not SystemType.VDC

    @property
    def coordinates_gc(self) -> bool:
        return self in (SystemType.RACKBLOX, SystemType.RACKBLOX_SOFTWARE)

    @property
    def uses_switch_state(self) -> bool:
        return self is SystemType.RACKBLOX


@dataclass
class RackConfig:
    """Everything needed to build one simulated rack."""

    system: SystemType = SystemType.RACKBLOX
    num_servers: int = 4
    #: Replica pairs; primaries round-robin across servers, the replica
    #: lands on the next server (rack-aware placement).
    num_pairs: int = 4
    device_profile: DeviceProfile = PSSD
    #: The paper's coordinated Kyber targets add ~1 ms for P95 network
    #: delay (§4.1), which matches the medium latency regime.
    network_profile: NetworkProfile = MEDIUM_NETWORK
    #: Per-vSSD flash geometry (scaled down; ratios match a real device).
    vssd_geometry: FlashGeometry = field(
        default_factory=lambda: FlashGeometry(
            channels=2, chips_per_channel=2, blocks_per_chip=64, pages_per_block=32
        )
    )
    #: Storage scheduler: fifo / deadline / kyber (§4.1 default: kyber).
    storage_scheduler: str = "kyber"
    #: Network scheduler: tb / fq / priority.  None -> system default
    #: (VDC-family: tb; RackBlox-family: priority, §4.1).
    network_scheduler: str = ""
    #: Switch egress line rate (KB/us); ~6.25 is the 50 Gb/s testbed NIC.
    #: The §4.5.2 experiments lower it to create queueing at the egress so
    #: the scheduling policy actually binds.
    egress_rate_kb_per_us: float = 6.25
    #: Per-flow token-bucket rate for the TB policy (KB/s).
    tb_flow_rate_kb_per_sec: float = 50_000.0
    #: Inject periodic high-priority traffic (the Priority experiment in
    #: §4.5.2 "periodically create[s] higher priority traffic").
    background_traffic: bool = False
    #: Enable erase suspend/resume in the device firmware (a within-device
    #: alternative to coordinated GC; ablation only, default off as in the
    #: paper's plain threshold-GC devices).
    erase_suspend: bool = False
    soft_threshold: float = 0.35
    gc_threshold: float = 0.25
    overprovision: float = 0.25
    write_cache_pages: int = 128
    #: GC monitor period.  The paper checks every 30 s against multi-TB
    #: devices; our devices are ~1e4x smaller, so the period shrinks with
    #: them to keep checks-per-device-lifetime comparable.
    gc_check_interval_us: float = 10 * MSEC
    #: Fraction of each vSSD's free blocks consumed before measuring.  The
    #: paper preconditions by consuming 50% of the free blocks over a long
    #: run; our runs are shorter, so the default starts closer to the soft
    #: threshold to reach GC activity within the measured window.
    precondition_fill: float = 0.6
    max_inflight_per_server: int = 8
    #: When True, vSSDs are software-isolated: pairs of vSSDs share the
    #: same flash channels (chips split between them), are rate-limited by
    #: token buckets, and GC as a channel group (§3.5.2, Figure 21).
    #: Requires an even number of pairs (collocated two at a time).
    sw_isolated: bool = False
    #: Head-sampling probability for request-level tracing (0 disables;
    #: the rack then installs the zero-overhead NullTracer).  Sampling
    #: draws come from a dedicated RNG, so tracing never perturbs the
    #: simulated behaviour -- only records it.
    trace_sample_rate: float = 0.0
    #: Deterministic fault-injection schedule (None disables chaos).  When
    #: set, the rack arms a FailureManager with the schedule's heartbeat
    #: parameters and a ChaosInjector that replays the events in sim time,
    #: auditing the §3.7 recovery invariants after each one.
    fault_schedule: Optional[FaultSchedule] = None
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_servers < 2:
            raise ConfigError("need at least 2 servers for rack-aware replicas")
        if self.num_pairs < 1:
            raise ConfigError("need at least one replica pair")
        if self.sw_isolated and self.num_pairs % 2 != 0:
            raise ConfigError("sw_isolated racks need an even number of pairs")
        if not 0.0 < self.gc_threshold <= self.soft_threshold < 1.0:
            raise ConfigError("need 0 < gc_threshold <= soft_threshold < 1")
        if not 0.0 <= self.precondition_fill < 1.0:
            raise ConfigError("precondition_fill must be in [0,1)")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ConfigError("trace_sample_rate must be in [0,1]")

    @property
    def effective_network_scheduler(self) -> str:
        if self.network_scheduler:
            return self.network_scheduler
        if self.system in (SystemType.VDC, SystemType.RACKBLOX_SOFTWARE):
            return "tb"
        return "priority"
