"""Hermes-style replication (§3.5.1).

RackBlox "uses Hermes [37] to ensure strong consistency between replicas
and correctness when redirecting requests".  Hermes is a broadcast,
invalidation-based protocol:

* a **write** at any replica (the coordinator for that write) stamps the
  key with a logical timestamp ``(version, node_id)``, broadcasts an
  *INV* (invalidate + new value) to all replicas, waits for all ACKs, then
  broadcasts *VAL* (validate); the write commits once every replica has
  ACKed the INV -- which is exactly the paper's "writes are considered
  complete when all replicas have a DRAM copy";
* a **read** is served locally by any replica whose copy is *Valid*; a
  read hitting an *Invalid* copy waits for the VAL.  This is what makes
  switch-side read redirection safe: every replica serves linearizable
  reads.
* concurrent writes to the same key resolve by timestamp order (higher
  wins), and any replica holding an INV can *replay* it if the
  coordinator dies, so writes never block forever.
"""

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.errors import ConfigError
from repro.sim import AllOf, Event, Simulator, Timeout


@dataclass(frozen=True, order=True)
class Timestamp:
    """Hermes logical timestamp: lexicographic (version, node)."""

    version: int
    node_id: int


class KeyState(enum.Enum):
    VALID = "valid"
    INVALID = "invalid"  # INV received, VAL pending


@dataclass
class _KeyEntry:
    value: Any
    ts: Timestamp
    state: KeyState
    #: Readers blocked until this copy becomes valid again.
    waiters: List[Event] = field(default_factory=list)


class HermesReplica:
    """One replica's key store and protocol handlers."""

    def __init__(self, sim: Simulator, node_id: int) -> None:
        self.sim = sim
        self.node_id = node_id
        self._store: Dict[Any, _KeyEntry] = {}
        self.alive = True
        self.invs_received = 0
        self.vals_received = 0
        self.stale_invs_ignored = 0

    # ------------------------------------------------------------ handlers

    def handle_inv(self, key: Any, ts: Timestamp, value: Any) -> bool:
        """INV: invalidate and adopt the new value if the TS is newer.

        Returns True (ACK) unless this replica is dead.  Hermes ACKs even
        stale INVs -- the coordinator only needs to know the message
        arrived; timestamp order decides the winner.
        """
        if not self.alive:
            return False
        self.invs_received += 1
        entry = self._store.get(key)
        if entry is not None and ts <= entry.ts:
            # A newer (or same) write already touched this key; this INV
            # lost the race.  ACK without downgrading local state.
            self.stale_invs_ignored += 1
            return True
        if entry is None:
            self._store[key] = _KeyEntry(value=value, ts=ts, state=KeyState.INVALID)
        else:
            entry.value = value
            entry.ts = ts
            entry.state = KeyState.INVALID
        return True

    def handle_val(self, key: Any, ts: Timestamp) -> None:
        """VAL: the write at ``ts`` committed; reads may resume."""
        if not self.alive:
            return
        self.vals_received += 1
        entry = self._store.get(key)
        if entry is None or entry.ts != ts:
            # Superseded by a newer write; its own VAL will arrive.
            return
        entry.state = KeyState.VALID
        waiters, entry.waiters = entry.waiters, []
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed(entry.value)

    # --------------------------------------------------------------- reads

    def try_read(self, key: Any) -> Tuple[bool, Any]:
        """Local read: (hit, value).  A miss means unknown key."""
        entry = self._store.get(key)
        if entry is None:
            return False, None
        if entry.state is KeyState.VALID:
            return True, entry.value
        return False, None

    def read_when_valid(self, key: Any) -> Generator:
        """Process: read the key, waiting out any in-flight write."""
        entry = self._store.get(key)
        if entry is None:
            return None
        if entry.state is KeyState.VALID:
            return entry.value
        waiter = Event(self.sim)
        entry.waiters.append(waiter)
        value = yield waiter
        return value

    def highest_ts(self, key: Any) -> Optional[Timestamp]:
        entry = self._store.get(key)
        return entry.ts if entry is not None else None

    def pending_inv(self, key: Any) -> Optional[Tuple[Timestamp, Any]]:
        """The INV this replica could replay if the coordinator died."""
        entry = self._store.get(key)
        if entry is not None and entry.state is KeyState.INVALID:
            return entry.ts, entry.value
        return None


class HermesCluster:
    """A replication group running Hermes over simulated message delays."""

    def __init__(
        self,
        sim: Simulator,
        num_replicas: int,
        delay_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        if num_replicas < 1:
            raise ConfigError("need at least one replica")
        self.sim = sim
        self.replicas = [HermesReplica(sim, node_id) for node_id in range(num_replicas)]
        #: One-way message latency; constant 10 us by default.
        self.delay_fn = delay_fn if delay_fn is not None else (lambda: 10.0)
        self._versions: Dict[Any, int] = {}
        self.writes_committed = 0
        self.writes_replayed = 0

    def _next_ts(self, key: Any, node_id: int) -> Timestamp:
        # Version derived from the highest timestamp visible locally, so
        # concurrent coordinators may produce equal versions -- broken by
        # node id, as in Hermes.
        highest = max(
            (r.highest_ts(key) for r in self.replicas if r.highest_ts(key)),
            default=None,
        )
        version = (highest.version + 1) if highest is not None else 1
        self._versions[key] = version
        return Timestamp(version=version, node_id=node_id)

    def write(self, key: Any, value: Any, coordinator_id: int) -> Generator:
        """Process: one Hermes write; returns its timestamp at commit.

        Validation happens eagerly (before the generator is scheduled), so
        a dead coordinator fails fast at the call site.
        """
        coordinator = self.replicas[coordinator_id]
        if not coordinator.alive:
            raise ConfigError(f"coordinator {coordinator_id} is dead")
        ts = self._next_ts(key, coordinator_id)

        def proc() -> Generator:
            yield self.sim.spawn(self._run_write(key, value, ts))
            self.writes_committed += 1
            return ts

        return proc()

    def _run_write(self, key: Any, value: Any, ts: Timestamp) -> Generator:
        # Broadcast INV to every replica (including the coordinator's own
        # store, applied locally without delay).
        acks = []
        for replica in self.replicas:
            acks.append(self.sim.spawn(self._send_inv(replica, key, ts, value)))
        yield AllOf(self.sim, acks)
        # Commit point: all live replicas hold the DRAM copy.  Broadcast
        # VAL (one-way; no ack needed).
        for replica in self.replicas:
            self.sim.spawn(self._send_val(replica, key, ts))

    def _send_inv(self, replica: HermesReplica, key, ts, value) -> Generator:
        yield Timeout(self.sim, self.delay_fn())
        replica.handle_inv(key, ts, value)

    def _send_val(self, replica: HermesReplica, key, ts) -> Generator:
        yield Timeout(self.sim, self.delay_fn())
        replica.handle_val(key, ts)

    def read(self, key: Any, replica_id: int) -> Generator:
        """Process: linearizable read at any replica."""
        replica = self.replicas[replica_id]
        value = yield self.sim.spawn(replica.read_when_valid(key))
        return value

    def replay_write(self, key: Any, surviving_id: int) -> Generator:
        """Process: a survivor replays an interrupted write (§ Hermes).

        If the coordinator died between INV and VAL, any replica holding
        the INV re-broadcasts it with the *same* timestamp, then VALs.
        """
        survivor = self.replicas[surviving_id]
        pending = survivor.pending_inv(key)
        if pending is None:
            return False
        ts, value = pending
        yield self.sim.spawn(self._run_write_replay(key, value, ts))
        self.writes_replayed += 1
        return True

    def _run_write_replay(self, key, value, ts) -> Generator:
        acks = []
        for replica in self.replicas:
            if replica.alive:
                acks.append(self.sim.spawn(self._send_inv(replica, key, ts, value)))
        yield AllOf(self.sim, acks)
        for replica in self.replicas:
            if replica.alive:
                self.sim.spawn(self._send_val(replica, key, ts))
