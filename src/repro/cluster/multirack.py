"""Multi-rack extension (the paper's stated future work).

§3.7: "As future work, we wish to extend it to multiple racks by
modifying Algorithm 1 to keep GC states consistent among switches."  The
common deployment already keeps one replica *outside* the rack (two in,
one out); this module adds the two pieces that make that replica usable
by the co-design:

* **GC-state synchronisation** -- every gc_op admitted by one ToR switch
  is propagated (after an inter-switch delay) to the peer racks' tables,
  so each switch holds an eventually-consistent view of every registered
  vSSD's GC state;
* **cross-rack fail-over redirection** -- when a read's vSSD *and* its
  in-rack replica are both collecting, the extended read path forwards to
  the cross-rack replica instead of eating the GC stall (the paper's
  "techniques that submit requests to another rack in parallel" reduced
  to its redirect-only form).

State between switches is only as fresh as the sync delay; the tests pin
down the staleness window explicitly.
"""

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from repro.errors import ConfigError, SwitchError
from repro.net.packet import Packet
from repro.sim import Simulator, Timeout
from repro.switch.dataplane import ForwardAction, ReplyAction, SwitchDataPlane

#: One-way ToR-to-ToR latency through the aggregation layer.
INTER_SWITCH_DELAY_US = 40.0


@dataclass
class CrossRackEntry:
    """Where a vSSD's out-of-rack replica lives."""

    replica_vssd_id: int
    rack_id: int
    server_ip: str


class MultiRackFabric:
    """A set of ToR switches keeping shared GC state for their vSSDs."""

    def __init__(
        self,
        sim: Simulator,
        num_racks: int = 2,
        sync_delay_us: float = INTER_SWITCH_DELAY_US,
    ) -> None:
        if num_racks < 2:
            raise ConfigError("a multi-rack fabric needs at least two racks")
        if sync_delay_us < 0:
            raise ConfigError("sync delay must be >= 0")
        self.sim = sim
        self.sync_delay_us = sync_delay_us
        self.switches: List[SwitchDataPlane] = [
            SwitchDataPlane() for _ in range(num_racks)
        ]
        #: vssd_id -> its cross-rack replica (per §3.5.1's 2+1 placement).
        self._cross_rack: Dict[int, CrossRackEntry] = {}
        #: vssd_id -> home rack.
        self._home_rack: Dict[int, int] = {}
        self.syncs_sent = 0
        self.cross_rack_redirects = 0

    # ---------------------------------------------------------- registration

    def register_vssd(
        self,
        vssd_id: int,
        home_rack: int,
        server_ip: str,
        in_rack_replica_id: int,
        in_rack_replica_ip: str,
        cross_rack: Optional[CrossRackEntry] = None,
    ) -> None:
        """Install a vSSD in *every* switch's tables.

        The home switch gets the normal Algorithm 1 entries; peer switches
        get forwarding entries so they can route (and track GC for) the
        vSSD too -- the "consistent among switches" part.
        """
        self._check_rack(home_rack)
        if vssd_id in self._home_rack:
            raise SwitchError(f"vSSD {vssd_id} already registered in the fabric")
        self._home_rack[vssd_id] = home_rack
        for switch in self.switches:
            switch.replica_table.insert(vssd_id, in_rack_replica_id, gc_status=0)
            if vssd_id not in switch.destination_table:
                switch.destination_table.insert(vssd_id, server_ip, gc_status=0)
            if in_rack_replica_id not in switch.destination_table:
                switch.destination_table.insert(
                    in_rack_replica_id, in_rack_replica_ip, gc_status=0
                )
        if cross_rack is not None:
            self._check_rack(cross_rack.rack_id)
            if cross_rack.rack_id == home_rack:
                raise ConfigError(
                    "the cross-rack replica must live in a different rack"
                )
            self._cross_rack[vssd_id] = cross_rack
            for switch in self.switches:
                if cross_rack.replica_vssd_id not in switch.destination_table:
                    switch.destination_table.insert(
                        cross_rack.replica_vssd_id, cross_rack.server_ip,
                        gc_status=0,
                    )

    def _check_rack(self, rack_id: int) -> None:
        if not 0 <= rack_id < len(self.switches):
            raise ConfigError(
                f"rack {rack_id} out of range [0,{len(self.switches)})"
            )

    # ------------------------------------------------------------ data plane

    def process_gc_op(self, rack_id: int, pkt: Packet) -> ReplyAction:
        """Algorithm 1's gc_op path on the local switch, plus propagation.

        The local switch decides (accept/delay) exactly as before; the
        resulting state change is then pushed to every peer switch after
        the inter-switch delay.
        """
        self._check_rack(rack_id)
        local = self.switches[rack_id]
        vssd_id = pkt.vssd_id
        action = local.process_packet(pkt)
        new_status = local.replica_table.gc_status(vssd_id)
        self.sim.spawn(self._propagate(rack_id, vssd_id, new_status))
        return action

    def _propagate(self, origin_rack: int, vssd_id: int, status: int) -> Generator:
        yield Timeout(self.sim, self.sync_delay_us)
        for rack_id, switch in enumerate(self.switches):
            if rack_id == origin_rack:
                continue
            if vssd_id in switch.replica_table:
                switch.replica_table.set_gc_status(vssd_id, status)
                switch.destination_table.set_gc_status(vssd_id, status)
                self.syncs_sent += 1

    def process_read(self, rack_id: int, pkt: Packet) -> ForwardAction:
        """The extended read path: Algorithm 1 plus cross-rack fail-over.

        When the local decision is "no redirect" *because both in-rack
        copies are collecting*, the read is steered to the cross-rack
        replica instead of queueing behind GC.
        """
        self._check_rack(rack_id)
        switch = self.switches[rack_id]
        original_vssd = pkt.vssd_id
        action = switch.process_packet(pkt)
        if action.redirected:
            return action
        entry = switch.replica_table.get(original_vssd)
        cross = self._cross_rack.get(original_vssd)
        if (
            entry is not None
            and cross is not None
            and entry.gc_status == 1
            and switch.destination_table.gc_status(entry.replica_vssd_id) == 1
        ):
            # Both in-rack copies are collecting: go out of rack.
            pkt.vssd_id = cross.replica_vssd_id
            pkt.dst = cross.server_ip
            self.cross_rack_redirects += 1
            return ForwardAction(packet=pkt, dst_ip=cross.server_ip,
                                 redirected=True)
        return action

    # ------------------------------------------------------------ inspection

    def gc_status_views(self, vssd_id: int) -> List[int]:
        """The GC bit every switch currently holds for a vSSD."""
        views = []
        for switch in self.switches:
            if vssd_id in switch.replica_table:
                views.append(switch.replica_table.gc_status(vssd_id))
        return views

    def consistent(self, vssd_id: int) -> bool:
        """True when every switch agrees on the vSSD's GC state."""
        views = self.gc_status_views(vssd_id)
        return len(set(views)) <= 1
