"""The simulated rack: the paper's testbed in one object.

A :class:`Rack` assembles clients, the emulated datacenter network, the
programmable ToR switch, and the storage servers into the end-to-end
request path of §3.7:

1. the client issues a RackBlox packet and the emulated datacenter
   latency (trace-driven in the paper, parametric here) elapses;
2. INT writes the measured network latency into the packet's LAT field;
3. the ToR data plane runs Algorithm 1 (redirection, GC admission) and
   the packet crosses the egress scheduler (TB / FQ / Priority);
4. the storage server runs Algorithm 2 (cache writes, schedule reads);
5. the response traverses the network back and the client records the
   end-to-end latency.

All four evaluated systems share this pipeline; they differ only in which
coordination hooks are armed (see :class:`~repro.cluster.config.SystemType`).
"""

import itertools
from typing import Dict, Generator, List, Optional

from repro.cluster.config import RackConfig, SystemType
from repro.cluster.controller import VdcController
from repro.cluster.coordinators import (
    IN_RACK_HOP_US,
    ControllerGcCoordinator,
    SwitchGcCoordinator,
)
from repro.cluster.replication import ReplicaPair, rack_aware_placement
from repro.errors import ConfigError
from repro.flash.gc import GreedyGcPolicy
from repro.flash.ssd import Ssd
from repro.net.int_telemetry import add_hop_latency
from repro.net.latency import LatencyProcess
from repro.net.packet import Packet, read_request, write_request
from repro.net.schedulers import (
    EgressPort,
    FairQueueScheduler,
    FifoScheduler,
    PriorityScheduler,
    TokenBucketScheduler,
)
from repro.server.gc_monitor import GcMonitor, LocalGcCoordinator
from repro.server.iosched import make_scheduler
from repro.server.sdf import StorageServer
from repro.server.write_cache import WriteCache
from repro.sim import AllOf, Event, Simulator, Timeout
from repro.sim.rng import RandomSource
from repro.switch.controlplane import SwitchControlPlane
from repro.switch.dataplane import SwitchDataPlane
from repro.switch.telemetry import FlowTelemetry
from repro.trace.tracer import make_tracer
from repro.vssd.allocator import VssdAllocator
from repro.vssd.channel_group import ChannelGroup
from repro.vssd.token_bucket import TokenBucket
from repro.vssd.vssd import VSsd

#: Host software overhead of one user-level proxy traversal (RackBlox
#: Software): kernel network stack + user-space forwarding, paid once on
#: the redirect leg and once on the relayed response.
SOFTWARE_REDIRECT_OVERHEAD_US = 150.0


def _make_network_scheduler(name: str, tb_flow_rate: float = 50_000.0):
    name = name.lower()
    if name == "tb":
        return TokenBucketScheduler(flow_rate_kb_per_sec=tb_flow_rate, burst_kb=64.0)
    if name == "fq":
        return FairQueueScheduler()
    if name == "priority":
        return PriorityScheduler()
    if name == "fifo":
        return FifoScheduler()
    raise ConfigError(f"unknown network scheduler {name!r} (tb/fq/priority/fifo)")


class Rack:
    """One rack of the configured system, ready to serve client load."""

    def __init__(self, config: RackConfig) -> None:
        self.config = config
        self.sim = Simulator()
        self.rng = RandomSource(config.seed)
        #: Fabric latency for control traffic (controller RTTs, redirect
        #: legs).  Client data paths each get their own process -- VMs in
        #: different parts of the datacenter see different congestion, and
        #: that heterogeneity is what coordinated I/O scheduling exploits.
        #: Link-fault multiplier inherited by lazily created client paths.
        self._link_degradation = 1.0
        self.latency = LatencyProcess(config.network_profile, self.rng.stream("net"))
        self._client_latency: Dict[str, LatencyProcess] = {}
        #: Request-level tracing (§3.4's latency decomposition, recorded
        #: span by span).  NullTracer unless the config samples.
        self.tracer = make_tracer(config.trace_sample_rate, seed=config.seed)

        # --- ToR switch -------------------------------------------------
        self.switch = SwitchDataPlane()
        self.control_plane = SwitchControlPlane(self.switch)
        #: Per-flow telemetry the control plane can read (heavy hitters,
        #: per-flow hop-latency trends).
        self.telemetry = FlowTelemetry()
        self._egress: Dict[str, EgressPort] = {}

        # --- controller (VDC family only) --------------------------------
        if config.system in (SystemType.VDC, SystemType.RACKBLOX_SOFTWARE):
            self.controller: Optional[VdcController] = VdcController(
                self.sim,
                gc_aware=(config.system is SystemType.RACKBLOX_SOFTWARE),
                latency_fn=lambda: self.latency.sample(self.sim.now),
            )
        else:
            self.controller = None

        # --- storage servers ---------------------------------------------
        self.servers: List[StorageServer] = []
        self.server_by_ip: Dict[str, StorageServer] = {}
        self._gc_coordinators: Dict[str, object] = {}
        self.gc_monitors: List[GcMonitor] = []
        for idx in range(config.num_servers):
            ip = f"10.0.0.{16 + idx}"
            scheduler = make_scheduler(
                config.storage_scheduler, coordinated=config.system.coordinates_io
            )
            server = StorageServer(
                self.sim,
                name=f"server-{idx}",
                ip=ip,
                scheduler=scheduler,
                write_cache=WriteCache(self.sim, capacity_pages=config.write_cache_pages),
                max_inflight=config.max_inflight_per_server,
                respond_fn=self._on_server_response,
            )
            if config.system is SystemType.RACKBLOX_SOFTWARE:
                server.software_redirect_fn = self._software_redirect
            self.servers.append(server)
            self.server_by_ip[ip] = server
            self._egress[ip] = EgressPort(
                self.sim,
                _make_network_scheduler(
                    config.effective_network_scheduler,
                    config.tb_flow_rate_kb_per_sec,
                ),
                rate_kb_per_us=config.egress_rate_kb_per_us,
            )
        #: Shared client-facing egress port (responses towards clients).
        self._client_egress = EgressPort(
            self.sim,
            _make_network_scheduler(
                config.effective_network_scheduler, config.tb_flow_rate_kb_per_sec
            ),
            rate_kb_per_us=config.egress_rate_kb_per_us,
        )

        # --- vSSD pairs ----------------------------------------------------
        self.pairs: List[ReplicaPair] = []
        self.pair_by_vssd: Dict[int, ReplicaPair] = {}
        self.vssd_by_id: Dict[int, VSsd] = {}
        self._build_pairs()

        # --- GC monitors -----------------------------------------------------
        for server in self.servers:
            coordinator = self._make_coordinator(server)
            self._gc_coordinators[server.ip] = coordinator
            monitor = GcMonitor(
                self.sim,
                server.vssds,
                coordinator,
                server.idle_predictors,
                check_interval_us=config.gc_check_interval_us,
            )
            monitor.start()
            self.gc_monitors.append(monitor)

        # --- client plumbing -------------------------------------------------
        self._pending: Dict[int, Event] = {}
        self._rid = itertools.count(1)
        self.background_packets = 0
        #: Servers the failure detector has declared dead (clients' view).
        self.failed_ips = set()
        if config.background_traffic:
            self.start_background_traffic()

        # --- fault injection -------------------------------------------------
        #: Armed ChaosInjector when the config carries a fault schedule.
        self.chaos = None
        self.failure_manager = None
        if config.fault_schedule is not None:
            self._arm_chaos(config.fault_schedule)

    def _arm_chaos(self, schedule) -> None:
        # Imported lazily: repro.chaos.injector reaches back into cluster
        # machinery, and FailureManager imports this module.
        from repro.chaos.injector import ChaosInjector
        from repro.cluster.failures import FailureManager

        self.failure_manager = FailureManager(
            self,
            heartbeat_interval_us=schedule.heartbeat_interval_us,
            miss_threshold=schedule.miss_threshold,
        )
        self.failure_manager.start()
        self.chaos = ChaosInjector(self, schedule, self.failure_manager)
        self.chaos.arm()

    # ------------------------------------------------------------------ build

    def _build_pairs(self) -> None:
        if self.config.sw_isolated:
            self._build_pairs_sw_isolated()
        else:
            self._build_pairs_hw_isolated()

    def _register_pair(self, pair_idx: int, primary: VSsd, replica: VSsd,
                       primary_ip: str, replica_ip: str) -> None:
        pair = ReplicaPair(
            name=f"pair-{pair_idx}",
            primary=primary,
            replica=replica,
            primary_server_ip=primary_ip,
            replica_server_ip=replica_ip,
        )
        self.pairs.append(pair)
        self.pair_by_vssd[primary.vssd_id] = pair
        self.pair_by_vssd[replica.vssd_id] = pair
        self.vssd_by_id[primary.vssd_id] = primary
        self.vssd_by_id[replica.vssd_id] = replica
        self.control_plane.register_vssd(
            primary.vssd_id, primary_ip, replica.vssd_id, replica_ip
        )
        self.control_plane.register_vssd(
            replica.vssd_id, replica_ip, primary.vssd_id, primary_ip
        )
        if self.controller is not None:
            self.controller.register_pair(primary.vssd_id, replica.vssd_id, replica_ip)
            self.controller.register_pair(replica.vssd_id, primary.vssd_id, primary_ip)

    def _build_pairs_hw_isolated(self) -> None:
        config = self.config
        placement = rack_aware_placement(config.num_pairs, config.num_servers)
        gc_policy_args = dict(
            gc_threshold=config.gc_threshold, soft_threshold=config.soft_threshold
        )
        for pair_idx, (primary_srv, replica_srv) in enumerate(placement):
            vssds = []
            for role, srv_idx in (("p", primary_srv), ("r", replica_srv)):
                server = self.servers[srv_idx]
                ssd = Ssd(
                    self.sim,
                    ssd_id=f"ssd-{srv_idx}-{pair_idx}{role}",
                    geometry=config.vssd_geometry,
                    profile=config.device_profile,
                )
                if config.erase_suspend:
                    for channel in ssd.channels:
                        channel.configure_suspend(True)
                allocator = VssdAllocator(ssd)
                vssd = allocator.create_hardware_isolated(
                    f"pair{pair_idx}-{role}",
                    channels=list(range(config.vssd_geometry.channels)),
                    overprovision=config.overprovision,
                    gc_policy=GreedyGcPolicy(**gc_policy_args),
                )
                server.host_vssd(vssd)
                vssds.append(vssd)
            primary, replica = vssds
            self._register_pair(
                pair_idx,
                primary,
                replica,
                self.servers[primary_srv].ip,
                self.servers[replica_srv].ip,
            )

    def _build_pairs_sw_isolated(self) -> None:
        """Software-isolated pairs: two vSSDs per SSD sharing channels.

        Pairs come in collocated couples (2i, 2i+1): their primaries share
        one SSD's channels on one server (chips split between them), their
        replicas share another SSD on the next server.  Each collocated
        couple forms a channel group that GCs together; isolation between
        the two tenants is token-bucket rate limiting (§3.3, §3.5.2).
        """
        config = self.config
        geometry = config.vssd_geometry
        if geometry.chips_per_channel < 2:
            raise ConfigError(
                "sw_isolated needs >= 2 chips per channel to split between tenants"
            )
        placement = rack_aware_placement(config.num_pairs // 2, config.num_servers)
        gc_policy_args = dict(
            gc_threshold=config.gc_threshold, soft_threshold=config.soft_threshold
        )
        # Token-bucket fair share: roughly half the SSD's program bandwidth.
        ops_per_sec = geometry.channels / 2 * 1e6 / config.device_profile.program_us
        for couple_idx, (primary_srv, replica_srv) in enumerate(placement):
            couple_vssds = []  # [(tenantA, tenantB)] for primary then replica
            for srv_idx in (primary_srv, replica_srv):
                server = self.servers[srv_idx]
                ssd = Ssd(
                    self.sim,
                    ssd_id=f"ssd-{srv_idx}-c{couple_idx}",
                    geometry=geometry,
                    profile=config.device_profile,
                )
                allocator = VssdAllocator(ssd)
                even_chips = [
                    chip.chip_id for chip in ssd.chips
                    if chip.chip_id % geometry.chips_per_channel
                    < geometry.chips_per_channel // 2
                ]
                odd_chips = [
                    chip.chip_id for chip in ssd.chips
                    if chip.chip_id not in set(even_chips)
                ]
                tenants = []
                for label, chips in (("a", even_chips), ("b", odd_chips)):
                    vssd = allocator.create_software_isolated(
                        f"couple{couple_idx}-{label}-srv{srv_idx}",
                        chips=chips,
                        overprovision=config.overprovision,
                        gc_policy=GreedyGcPolicy(**gc_policy_args),
                        rate_limiter=TokenBucket(
                            self.sim, rate_per_sec=ops_per_sec, capacity=64.0
                        ),
                    )
                    server.host_vssd(vssd)
                    tenants.append(vssd)
                ChannelGroup(f"group-{couple_idx}-srv{srv_idx}", tenants)
                couple_vssds.append(tenants)
            (primary_a, primary_b), (replica_a, replica_b) = couple_vssds
            self._register_pair(
                2 * couple_idx, primary_a, replica_a,
                self.servers[primary_srv].ip, self.servers[replica_srv].ip,
            )
            self._register_pair(
                2 * couple_idx + 1, primary_b, replica_b,
                self.servers[primary_srv].ip, self.servers[replica_srv].ip,
            )

    def _make_coordinator(self, server: StorageServer):
        system = self.config.system
        if system is SystemType.RACKBLOX:
            return SwitchGcCoordinator(self.sim, self.switch, server.ip)
        if system is SystemType.RACKBLOX_SOFTWARE:
            assert self.controller is not None
            return ControllerGcCoordinator(self.sim, self.controller, server.ip)
        return LocalGcCoordinator()

    # ------------------------------------------------------------ precondition

    def precondition(self, working_set_fraction: float = 0.5) -> None:
        """Age every vSSD before measurement, as the paper does (§4.1).

        Consumes ``precondition_fill`` of the free blocks with writes over
        the working set, leaving stale pages behind, *without* advancing
        simulated time (pure FTL state transitions).
        """
        fill = self.config.precondition_fill
        if fill <= 0:
            return
        for vssd in self.vssd_by_id.values():
            ftl = vssd.ftl
            working_set = max(1, int(ftl.logical_pages * working_set_fraction))
            target_ratio = 1.0 - fill
            lpn = 0
            while ftl.free_block_ratio() > target_ratio:
                ftl.place_write(lpn % working_set)
                lpn += 1

    def working_set_pages(self, pair: ReplicaPair, fraction: float = 0.5) -> int:
        return max(1, int(pair.primary.logical_pages * fraction))

    # ------------------------------------------------------- client -> server

    def new_request_id(self) -> int:
        return next(self._rid)

    def register_pending(self, rid: int) -> Event:
        event = Event(self.sim)
        self._pending[rid] = event
        return event

    def latency_for_client(self, client_name: str) -> LatencyProcess:
        """The (seeded) latency process of one client's network path."""
        process = self._client_latency.get(client_name)
        if process is None:
            process = LatencyProcess(
                self.config.network_profile, self.rng.stream(f"lat-{client_name}")
            )
            process.set_degradation(self._link_degradation)
            self._client_latency[client_name] = process
        return process

    def set_link_degradation(self, factor: float) -> None:
        """Scale every network path by ``factor`` (fault injection).

        Applies to the shared fabric, all existing per-client paths, and
        -- via the stored multiplier -- paths created later.  ``1.0``
        restores healthy links.
        """
        self._link_degradation = factor
        self.latency.set_degradation(factor)
        for process in self._client_latency.values():
            process.set_degradation(factor)

    def degraded(self) -> bool:
        """Whether the rack is inside a known fault window (for tracing)."""
        return bool(self.failed_ips) or self._link_degradation != 1.0

    def send_from_client(self, pkt: Packet, flow_id: str, priority: int = 1) -> None:
        """Launch a packet from a client into the rack.

        The client-to-server leg is a continuation chain rather than a
        spawned process: every packet pays exactly the heap entries its
        waits require, with no generator or start tick -- this path runs
        once per request leg and dominates the simulator's event budget.
        """
        if self.controller is not None:
            self.controller.note_demand(flow_id)
        sent_at = self.sim.now
        outbound = self.latency_for_client(pkt.src).sample(self.sim.now, "out")
        self.sim.schedule_after(
            outbound,
            lambda: self._packet_at_tor(pkt, flow_id, priority, sent_at, outbound),
        )

    # ------------------------------------------------- request injection API

    def issue_read(self, pair: ReplicaPair, lpn: int, client: str = "live",
                   priority: int = 1, target: str = "primary") -> Event:
        """Inject one read at the current sim time; the returned event
        fires with the response packet when it reaches the client edge.

        This is the single entry point for anything that drives the rack
        request by request -- the batch :class:`~repro.cluster.client.Client`
        and the live serving bridge both go through it, so traced spans and
        switch redirection behave identically for both.

        ``target="replica"`` addresses the replica vSSD instead of the
        primary -- the hedged-read path: a duplicate request sent after a
        tail delay so a slow or silently dead primary cannot hold the
        operation hostage.
        """
        if target not in ("primary", "replica"):
            raise ConfigError(f"read target must be primary|replica, got {target!r}")
        vssd = pair.primary if target == "primary" else pair.replica
        t0 = self.sim.now
        pkt = read_request(vssd.vssd_id, client, "", t0)
        rid = self.new_request_id()
        pkt.payload.update(lpn=lpn, rid=rid)
        trace = self.tracer.start_request(
            rid, "read", client, t0, lpn=lpn, vssd=pkt.vssd_id
        )
        done = self.register_pending(rid)
        if trace is not None:
            if target == "replica":
                trace.attrs["hedged"] = True
            if self.degraded():
                trace.attrs["degraded"] = True
            pkt.payload["trace"] = trace
            done.add_callback(
                lambda ev, t=trace: self.tracer.finish(t, self.sim.now)
            )
        self.send_from_client(pkt, flow_id=client, priority=priority)
        return done

    def issue_write(self, pair: ReplicaPair, lpn: int, client: str = "live",
                    priority: int = 1) -> Event:
        """Inject one replicated write; the returned event fires with the
        list of replica responses once every *live* replica holds a DRAM
        copy (§3.5.1 durability).  Replicas the failure detector declared
        dead are skipped; with no live replica the event fires immediately
        with an empty list.
        """
        t0 = self.sim.now
        targets = [
            (vssd, ip)
            for vssd, ip in (
                (pair.primary, pair.primary_server_ip),
                (pair.replica, pair.replica_server_ip),
            )
            if self.is_server_alive(ip)
        ]
        events = []
        for vssd, _server_ip in targets:
            pkt = write_request(vssd.vssd_id, client, "", t0)
            rid = self.new_request_id()
            pkt.payload.update(lpn=lpn, rid=rid)
            # Each replica leg is its own trace: the legs run concurrently
            # through different servers, so per-leg span threads keep the
            # Perfetto rendering linear.
            trace = self.tracer.start_request(
                rid, "write", client, t0,
                lpn=lpn, vssd=vssd.vssd_id,
                role="primary" if vssd is pair.primary else "replica",
            )
            done = self.register_pending(rid)
            if trace is not None:
                if self.degraded():
                    trace.attrs["degraded"] = True
                pkt.payload["trace"] = trace
                done.add_callback(
                    lambda ev, t=trace: self.tracer.finish(t, self.sim.now)
                )
            events.append(done)
            self.send_from_client(pkt, flow_id=client, priority=priority)
        return AllOf(self.sim, events)

    def _packet_at_tor(self, pkt: Packet, flow_id: str, priority: int,
                       sent_at: float, outbound: float) -> None:
        """Continuation: the packet reached the ToR switch pipeline."""
        add_hop_latency(pkt, outbound)
        trace = pkt.payload.get("trace")
        if trace is not None:
            trace.add_span("net.client_to_tor", sent_at, self.sim.now)
        action = self.switch.process_packet(pkt)
        if trace is not None:
            redirected = getattr(action, "redirected", False)
            if redirected:
                # Surface the fail-over/GC redirect on the trace itself so
                # tail attribution can slice failure-window requests out.
                trace.attrs["redirected"] = True
            trace.instant(
                "switch.pipeline", self.sim.now,
                redirected=redirected,
                dst=action.dst_ip, vssd=action.packet.vssd_id,
            )
        port = self._egress[action.dst_ip]
        enqueued_at = self.sim.now
        done = port.enqueue(action.packet, flow_id=flow_id, priority=priority)
        done.add_callback(
            lambda ev: self._packet_after_tor(
                action.packet, action.dst_ip, flow_id, enqueued_at
            )
        )

    def _packet_after_tor(self, pkt: Packet, dst_ip: str, flow_id: str,
                          enqueued_at: float) -> None:
        """Continuation: the egress port finished transmitting the packet."""
        hop = (self.sim.now - enqueued_at) + self.switch.pipeline_delay_us
        add_hop_latency(pkt, hop)
        self.telemetry.record(flow_id, pkt.size_kb, hop)
        trace = pkt.payload.get("trace")
        if trace is not None:
            trace.add_span("net.tor_egress", enqueued_at, self.sim.now, flow=flow_id)
        hop_start = self.sim.now
        self.sim.schedule_after(
            IN_RACK_HOP_US,
            lambda: self._deliver_to_server(pkt, dst_ip, hop_start),
        )

    def _deliver_to_server(self, pkt: Packet, dst_ip: str, hop_start: float) -> None:
        """Continuation: the packet arrived at the server NIC."""
        trace = pkt.payload.get("trace")
        if trace is not None:
            trace.add_span("net.tor_to_server", hop_start, self.sim.now)
        server = self.server_by_ip[dst_ip]
        if not server.alive:
            # A crashed server silently drops traffic until the heartbeat
            # machinery re-routes around it.
            return
        server.receive_packet(pkt)

    # ------------------------------------------------------- server -> client

    def _on_server_response(self, pkt: Packet, server: StorageServer) -> None:
        # The return leg is a continuation chain too (see send_from_client).
        proxy_ip = pkt.payload.pop("proxy_ip", None)
        if proxy_ip is not None:
            # RackBlox (Software): the user-level redirect is a proxy, so
            # the reply relays through the original server before heading
            # back to the client -- one more fabric traversal the
            # switch-based redirect never pays.
            relay_start = self.sim.now
            relay = self.latency.sample(self.sim.now, "ret")
            self.sim.schedule_after(
                relay + SOFTWARE_REDIRECT_OVERHEAD_US,
                lambda: self._response_relayed(pkt, relay, relay_start, proxy_ip),
            )
            return
        self._response_to_tor(pkt)

    def _response_relayed(self, pkt: Packet, relay: float, relay_start: float,
                          proxy_ip: str) -> None:
        """Continuation: the proxied reply reached the original server."""
        add_hop_latency(pkt, relay)
        trace = pkt.payload.get("trace")
        if trace is not None:
            trace.add_span(
                "net.redirect_relay", relay_start, self.sim.now, proxy=proxy_ip
            )
        self._response_to_tor(pkt)

    def _response_to_tor(self, pkt: Packet) -> None:
        hop_start = self.sim.now
        self.sim.schedule_after(
            IN_RACK_HOP_US, lambda: self._response_at_tor(pkt, hop_start)
        )

    def _response_at_tor(self, pkt: Packet, hop_start: float) -> None:
        """Continuation: the reply reached the ToR's client-facing port."""
        trace = pkt.payload.get("trace")
        if trace is not None:
            trace.add_span("net.server_to_tor", hop_start, self.sim.now)
        enqueued_at = self.sim.now
        done = self._client_egress.enqueue(pkt, flow_id=pkt.src)
        done.add_callback(lambda ev: self._response_after_egress(pkt, enqueued_at))

    def _response_after_egress(self, pkt: Packet, enqueued_at: float) -> None:
        """Continuation: the client egress port transmitted the reply."""
        add_hop_latency(pkt, self.sim.now - enqueued_at)
        trace = pkt.payload.get("trace")
        if trace is not None:
            trace.add_span("net.client_egress", enqueued_at, self.sim.now)
        return_start = self.sim.now
        return_latency = self.latency_for_client(pkt.dst).sample(self.sim.now, "ret")
        self.sim.schedule_after(
            return_latency, lambda: self._complete_at_client(pkt, return_start)
        )

    def _complete_at_client(self, pkt: Packet, return_start: float) -> None:
        """Continuation: the reply arrived at the client edge."""
        trace = pkt.payload.get("trace")
        if trace is not None:
            trace.add_span("net.tor_to_client", return_start, self.sim.now)
        rid = pkt.payload.get("rid")
        event = self._pending.pop(rid, None) if rid is not None else None
        if event is not None and not event.triggered:
            event.succeed(pkt)

    # -------------------------------------------- software redirection (RB-SW)

    def _software_redirect(self, pkt: Packet, server: StorageServer) -> bool:
        """RackBlox (Software): user-level read redirection at the server.

        Redirects only when the controller granted this vSSD's GC and, at
        grant time, named an idle replica (the paper's protocol).  Costs an
        extra server-to-server traversal plus host software overhead.
        """
        coordinator = self._gc_coordinators.get(server.ip)
        if not isinstance(coordinator, ControllerGcCoordinator):
            return False
        target_ip = coordinator.redirect_targets.get(pkt.vssd_id)
        if target_ip is None:
            return False
        pair = self.pair_by_vssd.get(pkt.vssd_id)
        if pair is None:
            return False
        peer = pair.peer_of(pkt.vssd_id)
        pkt.vssd_id = peer.vssd_id
        pkt.dst = target_ip
        pkt.payload["proxy_ip"] = server.ip
        self.sim.spawn(self._forward_between_servers(pkt, target_ip))
        return True

    def _forward_between_servers(self, pkt: Packet, dst_ip: str) -> Generator:
        # The server-to-server leg rides the same emulated datacenter
        # fabric as client traffic (the paper injects trace latency on
        # every traversal), plus user-level forwarding overhead -- the
        # "additional networking overhead" that keeps RackBlox (Software)
        # below RackBlox (§4.3).
        forward_start = self.sim.now
        hop = self.latency.sample(self.sim.now)
        yield Timeout(self.sim, hop + SOFTWARE_REDIRECT_OVERHEAD_US)
        add_hop_latency(pkt, hop)
        trace = pkt.payload.get("trace")
        if trace is not None:
            trace.add_span(
                "net.redirect_relay", forward_start, self.sim.now, dst=dst_ip
            )
        self.server_by_ip[dst_ip].receive_packet(pkt)

    # -------------------------------------------------- background traffic

    def start_background_traffic(
        self,
        rate_iops: float = 2_000.0,
        burst: int = 32,
        period_us: float = 50_000.0,
        priority: int = 0,
        size_kb: float = 4.0,
    ) -> None:
        """Periodic high-priority traffic (the §4.5.2 Priority experiment).

        Bursts of ``burst`` packets at ``priority`` (0 = highest) hit every
        server-facing egress port each ``period_us``, delaying storage
        traffic queued at lower priority.
        """
        self.sim.spawn(self._background_loop(burst, period_us, priority, size_kb))

    def _background_loop(
        self, burst: int, period_us: float, priority: int, size_kb: float
    ) -> Generator:
        from repro.net.packet import OpType

        while True:
            yield Timeout(self.sim, period_us)
            for port in self._egress.values():
                for _ in range(burst):
                    filler = Packet(
                        op=OpType.WRITE, vssd_id=0, src="bg", dst="bg",
                        size_kb=size_kb,
                    )
                    port.enqueue(filler, flow_id="bg", priority=priority)
                    self.background_packets += 1

    # ----------------------------------------------------------------- stats

    def is_server_alive(self, ip: str) -> bool:
        """The client-visible membership view (post-detection)."""
        return ip not in self.failed_ips

    def delete_pair(self, pair: ReplicaPair) -> None:
        """Tear down a replica pair: del_vssd both members (Table 1).

        Removes the switch entries, the rack lookup tables, and the
        hosting servers' vSSD registrations.  In-flight requests to the
        pair are the caller's responsibility to drain first.
        """
        if pair not in self.pairs:
            raise ConfigError(f"pair {pair.name!r} is not part of this rack")
        self.pairs.remove(pair)
        for vssd, ip in (
            (pair.primary, pair.primary_server_ip),
            (pair.replica, pair.replica_server_ip),
        ):
            self.control_plane.deregister_vssd(vssd.vssd_id)
            self.pair_by_vssd.pop(vssd.vssd_id, None)
            self.vssd_by_id.pop(vssd.vssd_id, None)
            server = self.server_by_ip.get(ip)
            if server is not None:
                server._vssds.pop(vssd.vssd_id, None)  # noqa: SLF001
                server.idle_predictors.pop(vssd.vssd_id, None)

    def redirect_count(self) -> int:
        switch_redirects = self.switch.reads_redirected
        software_redirects = sum(s.software_redirects for s in self.servers)
        return switch_redirects + software_redirects

    def gc_blocked_read_count(self) -> int:
        """Reads whose flash service overlapped a GC pass (Fig. 2's stall)."""
        return sum(s.gc_blocked_reads for s in self.servers)

    def total_gc_runs(self) -> int:
        return sum(v.gc_runs for v in self.vssd_by_id.values())
