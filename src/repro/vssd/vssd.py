"""The vSSD: a virtual SSD instance with its own FTL and GC.

Reads and writes are timed processes that occupy the backing flash
channels; GC occupies the victim's channel for the duration of its page
migrations and erase, producing exactly the head-of-line blocking the
paper's coordinated GC is designed to hide.
"""

import enum
from typing import Generator, List, Optional

from repro.errors import VSSDError
from repro.flash.chip import FlashChip
from repro.flash.ftl import PageMappedFtl
from repro.flash.gc import GreedyGcPolicy
from repro.flash.ssd import Ssd
from repro.vssd.token_bucket import TokenBucket


class IsolationType(enum.Enum):
    """How a vSSD is isolated from its neighbours (Figure 4)."""

    HARDWARE = "hardware"  # owns whole channels
    SOFTWARE = "software"  # owns chips, shares channels


class VSsd:
    """One virtual SSD instance carved from a physical SSD."""

    def __init__(
        self,
        vssd_id: int,
        name: str,
        ssd: Ssd,
        chips: List[FlashChip],
        isolation: IsolationType,
        overprovision: float = 0.25,
        gc_policy: Optional[GreedyGcPolicy] = None,
        rate_limiter: Optional[TokenBucket] = None,
    ) -> None:
        if not chips:
            raise VSSDError(f"vSSD {name!r} needs at least one chip")
        if isolation is IsolationType.SOFTWARE and rate_limiter is None:
            # Software isolation *is* the token bucket (§3.3); default to a
            # generous bucket so unconfigured tests are not throttled.
            rate_limiter = TokenBucket(ssd.sim, rate_per_sec=1e9, capacity=1e9)
        self.vssd_id = vssd_id
        self.name = name
        self.ssd = ssd
        self.sim = ssd.sim
        self.isolation = isolation
        self.ftl = PageMappedFtl(
            name, chips, ssd.geometry.pages_per_block, overprovision=overprovision
        )
        self.gc_policy = gc_policy if gc_policy is not None else GreedyGcPolicy()
        self.rate_limiter = rate_limiter

        #: True while a GC pass is running (mirrored into the switch tables).
        self.gc_active = False
        #: Set by the channel group, if this vSSD belongs to one.
        self.channel_group = None

        # Per-vSSD I/O statistics.
        self.reads_served = 0
        self.writes_served = 0
        self.gc_runs = 0
        self.gc_busy_us = 0.0

    @property
    def page_kb(self) -> float:
        return float(self.ssd.geometry.page_size_kb)

    @property
    def logical_pages(self) -> int:
        return self.ftl.logical_pages

    def free_block_ratio(self) -> float:
        return self.ftl.free_block_ratio()

    # ------------------------------------------------------------------- I/O

    def read(self, lpn: int) -> Generator:
        """Process: read one logical page, including channel queueing."""
        if self.rate_limiter is not None:
            yield from self.rate_limiter.throttle(1)
        addr = self.ftl.lookup(lpn)
        if addr is None:
            # Unwritten page: the device still performs an array read (it
            # returns the erased pattern); charge the stripe-target chip.
            chip = self.ftl.chips[lpn % len(self.ftl.chips)]
        else:
            chip = addr.chip
        channel = self.ssd.channel_of_chip(chip)
        yield from channel.read_page(self.page_kb)
        self.reads_served += 1

    def write(self, lpn: int) -> Generator:
        """Process: program one logical page out-of-place."""
        if self.rate_limiter is not None:
            yield from self.rate_limiter.throttle(1)
        addr = self.ftl.place_write(lpn)
        channel = self.ssd.channel_of_chip(addr.chip)
        yield from channel.program_page(self.page_kb)
        self.ssd.pages_written += 1
        self.writes_served += 1

    # -------------------------------------------------------------------- GC

    def gc_until(self, target_ratio: float, max_victims: int = 32) -> Generator:
        """Process: run GC until the free ratio recovers to ``target_ratio``.

        State transitions happen victim-by-victim, but the physical work is
        issued as *individual* channel commands (page read, page program,
        block erase), exactly like real firmware: host I/O queued on the
        channel slips in between GC commands, so a read's worst-case GC
        stall is one erase (a few milliseconds), not a whole victim's worth
        of migrations -- matching §3.5's "a 4KB read ... may wait for a few
        milliseconds due to the GC".
        """
        if self.gc_active:
            return
        self.gc_active = True
        self.gc_runs += 1
        started = self.sim.now
        try:
            victims = 0
            while (
                self.ftl.free_block_ratio() < target_ratio and victims < max_victims
            ):
                result = self.gc_policy.collect_once(self.ftl)
                if result is None:
                    break
                victims += 1
                for _lpn, old, new in result.migrations:
                    src_channel = self.ssd.channel_of_chip(old.chip)
                    dst_channel = self.ssd.channel_of_chip(new.chip)
                    yield from src_channel.read_page(self.page_kb)
                    yield from dst_channel.program_page(self.page_kb)
                victim_channel = self.ssd.channel_of_chip(result.victim.chip)
                yield from victim_channel.erase_block()
        finally:
            self.gc_busy_us += self.sim.now - started
            self.gc_active = False

    def gc_needed(self) -> Optional[str]:
        """What kind of GC the FTL currently calls for.

        Returns ``"regular"`` below the hard threshold, ``"soft"`` below the
        soft threshold, else ``None`` (background GC is decided by the idle
        predictor, not by free space).
        """
        if self.gc_policy.needs_regular_gc(self.ftl):
            return "regular"
        if self.gc_policy.wants_soft_gc(self.ftl):
            return "soft"
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"VSsd(id={self.vssd_id}, name={self.name!r}, "
            f"isolation={self.isolation.value}, "
            f"free={self.free_block_ratio():.2f})"
        )
