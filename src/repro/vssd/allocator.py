"""Carving vSSDs out of physical SSDs.

The allocator owns the channel/chip inventory of one SSD and hands out
non-overlapping slices: whole channels for hardware-isolated vSSDs, chips
for software-isolated ones.  Deleting a vSSD returns its resources.
"""

import itertools
from typing import Dict, List, Optional, Sequence

from repro.errors import VSSDError
from repro.flash.gc import GreedyGcPolicy
from repro.flash.ssd import Ssd
from repro.vssd.token_bucket import TokenBucket
from repro.vssd.vssd import IsolationType, VSsd

#: Process-wide vSSD id sequence; ids must be unique across the whole rack
#: because the ToR switch tables are keyed by them.
_vssd_ids = itertools.count(1)


def next_vssd_id() -> int:
    return next(_vssd_ids)


class VssdAllocator:
    """Tracks channel/chip ownership for one physical SSD."""

    def __init__(self, ssd: Ssd) -> None:
        self.ssd = ssd
        self._free_channels = set(range(ssd.geometry.channels))
        #: Chips available for software-isolated carving, by chip id.
        self._free_chips = {chip.chip_id for chip in ssd.chips}
        self._vssds: Dict[int, VSsd] = {}
        self._owned_channels: Dict[int, List[int]] = {}
        self._owned_chips: Dict[int, List[int]] = {}

    @property
    def vssds(self) -> List[VSsd]:
        return list(self._vssds.values())

    def create_hardware_isolated(
        self,
        name: str,
        channels: Sequence[int],
        overprovision: float = 0.25,
        gc_policy: Optional[GreedyGcPolicy] = None,
    ) -> VSsd:
        """Allocate a vSSD owning the given channels outright."""
        channels = list(channels)
        if not channels:
            raise VSSDError("hardware-isolated vSSD needs at least one channel")
        for channel_id in channels:
            if channel_id not in self._free_channels:
                raise VSSDError(
                    f"channel {channel_id} is not available on {self.ssd.ssd_id}"
                )
        chips = []
        for channel_id in channels:
            for chip in self.ssd.chips_of_channel(channel_id):
                if chip.chip_id not in self._free_chips:
                    raise VSSDError(
                        f"chip {chip.chip_id} on channel {channel_id} is already "
                        "carved out by a software-isolated vSSD"
                    )
                chips.append(chip)
        for channel_id in channels:
            self._free_channels.discard(channel_id)
        for chip in chips:
            self._free_chips.discard(chip.chip_id)
        vssd = VSsd(
            next_vssd_id(),
            name,
            self.ssd,
            chips,
            IsolationType.HARDWARE,
            overprovision=overprovision,
            gc_policy=gc_policy,
        )
        self._vssds[vssd.vssd_id] = vssd
        self._owned_channels[vssd.vssd_id] = channels
        self._owned_chips[vssd.vssd_id] = [chip.chip_id for chip in chips]
        return vssd

    def create_software_isolated(
        self,
        name: str,
        chips: Sequence[int],
        overprovision: float = 0.25,
        gc_policy: Optional[GreedyGcPolicy] = None,
        rate_limiter: Optional[TokenBucket] = None,
    ) -> VSsd:
        """Allocate a vSSD owning chips, sharing their channels."""
        chip_ids = list(chips)
        if not chip_ids:
            raise VSSDError("software-isolated vSSD needs at least one chip")
        for chip_id in chip_ids:
            if chip_id not in self._free_chips:
                raise VSSDError(f"chip {chip_id} is not available on {self.ssd.ssd_id}")
            channel_id = self.ssd.geometry.channel_of_chip(chip_id)
            if channel_id not in self._free_channels:
                # Channel fully owned by a hardware-isolated vSSD.
                raise VSSDError(
                    f"chip {chip_id} sits on channel {channel_id}, which is "
                    "exclusively owned"
                )
        for chip_id in chip_ids:
            self._free_chips.discard(chip_id)
        vssd = VSsd(
            next_vssd_id(),
            name,
            self.ssd,
            [self.ssd.chips[chip_id] for chip_id in chip_ids],
            IsolationType.SOFTWARE,
            overprovision=overprovision,
            gc_policy=gc_policy,
            rate_limiter=rate_limiter,
        )
        self._vssds[vssd.vssd_id] = vssd
        self._owned_chips[vssd.vssd_id] = chip_ids
        return vssd

    def delete(self, vssd: VSsd) -> None:
        """Delete a vSSD and return its channels/chips to the free pool."""
        if vssd.vssd_id not in self._vssds:
            raise VSSDError(f"vSSD {vssd.vssd_id} is not managed by this allocator")
        del self._vssds[vssd.vssd_id]
        for channel_id in self._owned_channels.pop(vssd.vssd_id, []):
            self._free_channels.add(channel_id)
        for chip_id in self._owned_chips.pop(vssd.vssd_id, []):
            self._free_chips.add(chip_id)

    def free_channel_count(self) -> int:
        return len(self._free_channels)

    def free_chip_count(self) -> int:
        return len(self._free_chips)
