"""Channel groups for software-isolated vSSDs (§3.5.2).

Software-isolated vSSDs that span the same channels interfere through the
shared bus, so RackBlox groups them: **all vSSDs of a channel group perform
GC simultaneously** ("if one vSSD must perform GC and each vSSD will be
affected anyway, then all vSSDs should perform GC to reduce GC frequency").

To let the group wait for a common GC point, a vSSD that runs out of free
blocks *borrows* free blocks from collocated vSSDs, in groups (1 GB by
default in the paper; configurable in blocks here).  Borrowed blocks are
erased and returned after GC.  The group is managed entirely by the SDF
and never exposed to the switch.
"""

from typing import Generator, List, Optional

from repro.errors import VSSDError
from repro.sim import AllOf
from repro.vssd.vssd import IsolationType, VSsd


class ChannelGroup:
    """A set of software-isolated vSSDs sharing the same channels."""

    def __init__(self, name: str, members: List[VSsd], borrow_blocks: int = 8) -> None:
        if not members:
            raise VSSDError("channel group needs at least one member")
        for member in members:
            if member.isolation is not IsolationType.SOFTWARE:
                raise VSSDError(
                    f"vSSD {member.name!r} is hardware-isolated; channel groups "
                    "only hold software-isolated vSSDs"
                )
        channel_sets = [
            frozenset(
                member.ssd.geometry.channel_of_chip(chip.chip_id)
                for chip in member.ftl.chips
            )
            for member in members
        ]
        if len(set(channel_sets)) != 1:
            raise VSSDError(
                "channel-group members must span the same set of channels; "
                f"got {sorted(set(channel_sets), key=sorted)}"
            )
        self.name = name
        self.members = list(members)
        self.borrow_blocks = borrow_blocks
        self.sim = members[0].sim
        for member in members:
            member.channel_group = self
        self.group_gcs = 0
        self.blocks_borrowed = 0

    def free_block_ratio(self) -> float:
        """Aggregate free ratio across the group -- the threshold input."""
        free = sum(member.ftl.free_blocks_total() for member in self.members)
        total = sum(member.ftl.total_blocks for member in self.members)
        return free / total

    def rebalance_free_blocks(self) -> int:
        """Lend blocks to members that exhausted their own free pool.

        Called when a member is about to run dry but the *group* is still
        above the GC threshold, so group-wide GC can keep being delayed.
        Returns the number of blocks transferred.
        """
        moved = 0
        needy = [m for m in self.members if m.ftl.free_blocks_total() <= 1]
        donors = sorted(
            (m for m in self.members if m.ftl.free_blocks_total() > 2),
            key=lambda m: -m.ftl.free_blocks_total(),
        )
        for member in needy:
            for donor in donors:
                if donor is member:
                    continue
                granted = donor.ftl.lend_free_blocks(self.borrow_blocks, member.ftl)
                moved += granted
                if granted > 0:
                    break
        self.blocks_borrowed += moved
        return moved

    def needs_group_gc(self) -> Optional[str]:
        """GC kind for the whole group, from the aggregate free ratio."""
        # All members share a policy configuration; use the first's.
        policy = self.members[0].gc_policy
        ratio = self.free_block_ratio()
        if ratio < policy.gc_threshold:
            return "regular"
        if ratio < policy.soft_threshold:
            return "soft"
        return None

    def group_gc(self, target_ratio: float) -> Generator:
        """Process: run GC on every member simultaneously.

        The members' GC passes overlap in time, exactly like the paper's
        "all vSSDs of the channel group will perform GC simultaneously".
        """
        self.group_gcs += 1
        passes = [
            self.sim.spawn(member.gc_until(target_ratio)) for member in self.members
        ]
        yield AllOf(self.sim, passes)
