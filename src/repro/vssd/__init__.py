"""SSD virtualization (vSSDs).

A programmable SSD is carved into virtual SSD instances (Figure 4):

* **hardware-isolated** vSSDs own whole flash channels -- channel-level
  parallelism gives the strongest isolation;
* **software-isolated** vSSDs own chips but share channels, relying on
  token-bucket rate limiting for (weaker) isolation.

Software-isolated vSSDs that span the same channels form a *channel group*
(§3.5.2) that garbage-collects together and lends free blocks internally.
"""

from repro.vssd.allocator import VssdAllocator
from repro.vssd.channel_group import ChannelGroup
from repro.vssd.token_bucket import TokenBucket
from repro.vssd.vssd import IsolationType, VSsd

__all__ = [
    "IsolationType",
    "VSsd",
    "VssdAllocator",
    "ChannelGroup",
    "TokenBucket",
]
