"""Token-bucket rate limiting.

The isolation primitive of the paper's baselines (VDC, IOFlow) and of
software-isolated vSSDs: operations consume tokens that refill at a fixed
rate, so a tenant exceeding its share is delayed rather than starving
neighbours.
"""

from typing import Generator

from repro.errors import ConfigError
from repro.sim import Simulator, Timeout


class TokenBucket:
    """A continuous-refill token bucket on the simulated clock."""

    def __init__(self, sim: Simulator, rate_per_sec: float, capacity: float) -> None:
        if rate_per_sec <= 0:
            raise ConfigError(f"rate must be positive, got {rate_per_sec}")
        if capacity <= 0:
            raise ConfigError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.rate_per_sec = rate_per_sec
        self.capacity = capacity
        self._tokens = capacity
        self._last_refill = sim.now
        #: The virtual time at which the last admitted op's tokens are
        #: covered; serialises waiters fairly (FIFO by arrival).
        self._reserved_until = sim.now
        self.total_consumed = 0.0
        self.total_delay_us = 0.0

    @property
    def tokens(self) -> float:
        """Tokens available right now (after refill accrual)."""
        self._refill()
        return self._tokens

    def _refill(self) -> None:
        now = self.sim.now
        elapsed_sec = (now - self._last_refill) / 1e6
        if elapsed_sec > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed_sec * self.rate_per_sec)
            self._last_refill = now

    def delay_for(self, amount: float) -> float:
        """Microseconds a request for ``amount`` tokens must wait *and*
        commit the reservation (callers must then wait that long)."""
        if amount <= 0:
            raise ConfigError(f"token amount must be positive, got {amount}")
        self._refill()
        now = self.sim.now
        # Serve from the bucket first; any shortfall is paid for by waiting
        # for refill.  Reservations queue behind earlier waiters.
        start = max(now, self._reserved_until)
        available_at_start = self._tokens + (start - now) / 1e6 * self.rate_per_sec
        available_at_start = min(available_at_start, self.capacity)
        shortfall = amount - available_at_start
        wait = start - now
        if shortfall > 0:
            wait += shortfall / self.rate_per_sec * 1e6
        self._reserved_until = now + wait
        self._tokens -= amount  # may go negative: a debt paid by refill
        self.total_consumed += amount
        self.total_delay_us += wait
        return wait

    def throttle(self, amount: float) -> Generator:
        """Process: block until ``amount`` tokens are granted."""
        wait = self.delay_for(amount)
        if wait > 0:
            yield Timeout(self.sim, wait)
