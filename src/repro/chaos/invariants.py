"""Recovery invariants checked after every injected fault.

RackBlox's failure handling (§3.7) promises four properties that the
checker audits directly against rack state, without going through the
request path:

a. **Durability** -- every acknowledged write still has at least one
   live copy, either mapped in a surviving member's FTL or dirty in its
   server's write cache.
b. **Read routability** -- walking the switch tables the way the data
   plane does (Algorithm 1's GC-bit redirect included) never lands a
   read on a server that is dead *and* already detected; i.e. once the
   failure manager has flipped the GC bits, reads reach the replica.
c. **Replication factor** -- after a recovery or re-replication event
   settles, every pair whose members are not inside a *known* outage
   window has two live members again.
d. **Switch/control-plane agreement** -- the data-plane tables contain
   exactly the vSSDs in the control plane's registration log, with
   matching replica links and destination servers.

Checks are cheap table walks, so the injector can afford to run them
after every event and once more at the end of the run.
"""

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.errors import SwitchError


@dataclass(frozen=True)
class InvariantViolation:
    at_us: float
    invariant: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"[{self.at_us:.0f}us] {self.invariant}: {self.detail}"


def resolve_read_destination(switch, vssd_id: int) -> Tuple[str, bool]:
    """Pure walk of the data plane's read path (no counters mutated).

    Returns ``(server_ip, redirected)`` for a read addressed to
    ``vssd_id``, applying the same GC-bit redirect the in-network
    pipeline applies: redirect to the replica iff the primary's GC bit
    is set and the replica's is clear.
    """
    entry = switch.replica_table.get(vssd_id)
    if entry is None:
        raise SwitchError(f"vSSD {vssd_id} not in replica table")
    resolved = vssd_id
    redirected = False
    if entry.gc_status == 1:
        replica = entry.replica_vssd_id
        if switch.destination_table.gc_status(replica) == 0:
            resolved = replica
            redirected = True
    dest = switch.destination_table.get(resolved)
    if dest is None:
        raise SwitchError(f"vSSD {resolved} not in destination table")
    return dest.server_ip, redirected


class InvariantChecker:
    """Audits a :class:`~repro.cluster.rack.Rack` against §3.7 invariants."""

    def __init__(self, rack) -> None:
        self.rack = rack
        # pair name -> set of acknowledged LPNs (invariant a's obligation).
        self.acked: Dict[str, Set[int]] = {}
        self.checks_run = 0
        self.violations: List[InvariantViolation] = []

    # -------------------------------------------------------- bookkeeping

    def note_acked_write(self, pair, lpn: int) -> None:
        self.acked.setdefault(pair.name, set()).add(lpn)

    def _violate(self, invariant: str, detail: str) -> None:
        self.violations.append(
            InvariantViolation(self.rack.sim.now, invariant, detail)
        )

    @property
    def lost_acked_writes(self) -> int:
        return sum(
            1 for v in self.violations if v.invariant == "acked-write-durability"
        )

    # ------------------------------------------------------------- checks

    def _member_holds(self, vssd, server_ip: str, lpn: int) -> bool:
        server = self.rack.server_by_ip.get(server_ip)
        if server is None or not server.alive:
            return False
        if vssd.ftl.lookup(lpn) is not None:
            return True
        # Acked-but-unflushed writes live in the server's DRAM cache;
        # an entry mid-flush has already run place_write, so it shows
        # up in the FTL map via the branch above.
        return (vssd.vssd_id, lpn) in server.write_cache._dirty

    def check_durable_writes(self, label: str = "") -> int:
        """Invariant (a): no acknowledged write may lose its last copy."""
        self.checks_run += 1
        before = len(self.violations)
        for pair in self.rack.pairs:
            obligations = self.acked.get(pair.name)
            if not obligations:
                continue
            members = (
                (pair.primary, pair.primary_server_ip),
                (pair.replica, pair.replica_server_ip),
            )
            for lpn in sorted(obligations):
                if not any(self._member_holds(v, ip, lpn) for v, ip in members):
                    self._violate(
                        "acked-write-durability",
                        f"{label}: pair {pair.name} lpn {lpn} has no live copy",
                    )
        return len(self.violations) - before

    def check_reads_routable(self, label: str = "") -> int:
        """Invariant (b): post-detection, the switch never routes a read
        at a server it already knows is dead."""
        self.checks_run += 1
        before = len(self.violations)
        for pair in self.rack.pairs:
            try:
                dest_ip, _ = resolve_read_destination(
                    self.rack.switch, pair.primary.vssd_id
                )
            except SwitchError as exc:
                self._violate(
                    "reads-routable", f"{label}: pair {pair.name}: {exc}"
                )
                continue
            server = self.rack.server_by_ip.get(dest_ip)
            dead = server is None or not server.alive
            if dead and dest_ip in self.rack.failed_ips:
                self._violate(
                    "reads-routable",
                    f"{label}: pair {pair.name} reads routed to detected-dead "
                    f"server {dest_ip}",
                )
        return len(self.violations) - before

    def check_replication_factor(self, label: str = "") -> int:
        """Invariant (c): outside known outage windows, both members of
        every pair are on live servers.

        Pairs with a member inside a *detected* outage (its IP is in
        ``rack.failed_ips``) are skipped: that degradation is the very
        condition the redirect machinery covers until the schedule's
        recovery or re-replication event repairs it.
        """
        self.checks_run += 1
        before = len(self.violations)
        for pair in self.rack.pairs:
            member_ips = (pair.primary_server_ip, pair.replica_server_ip)
            if any(ip in self.rack.failed_ips for ip in member_ips):
                continue
            for ip in member_ips:
                server = self.rack.server_by_ip.get(ip)
                if server is None or not server.alive:
                    self._violate(
                        "replication-factor",
                        f"{label}: pair {pair.name} member on {ip} is dead "
                        "but not tracked as a known failure",
                    )
        return len(self.violations) - before

    def check_switch_tables(self, label: str = "") -> int:
        """Invariant (d): data-plane tables == control-plane log."""
        self.checks_run += 1
        before = len(self.violations)
        switch = self.rack.switch
        log = self.rack.control_plane.registration_log()
        for vssd_id in sorted(log):
            server_ip, replica_id, _replica_ip = log[vssd_id]
            entry = switch.replica_table.get(vssd_id)
            if entry is None:
                self._violate(
                    "switch-tables",
                    f"{label}: registered vSSD {vssd_id} missing from "
                    "replica table",
                )
            elif entry.replica_vssd_id != replica_id:
                self._violate(
                    "switch-tables",
                    f"{label}: vSSD {vssd_id} replica link {entry.replica_vssd_id}"
                    f" != registered {replica_id}",
                )
            dest = switch.destination_table.get(vssd_id)
            if dest is None:
                self._violate(
                    "switch-tables",
                    f"{label}: registered vSSD {vssd_id} missing from "
                    "destination table",
                )
            elif dest.server_ip != server_ip:
                self._violate(
                    "switch-tables",
                    f"{label}: vSSD {vssd_id} destination {dest.server_ip} "
                    f"!= registered {server_ip}",
                )
        for vssd_id in switch.replica_table.ids():
            if vssd_id not in log:
                self._violate(
                    "switch-tables",
                    f"{label}: stale replica-table entry for unregistered "
                    f"vSSD {vssd_id}",
                )
        return len(self.violations) - before

    def check_all(self, label: str = "") -> int:
        found = self.check_durable_writes(label)
        found += self.check_reads_routable(label)
        found += self.check_switch_tables(label)
        return found
