"""Executes a :class:`FaultSchedule` against a live rack.

The injector arms one simulator callback per scheduled event at rack
construction time, so faults fire at exact sim instants regardless of
how the simulation is advanced -- the batch engine's ``run_until`` loop
and the live service's pump both just cross the timestamps.  After every
event it runs the cheap recovery invariants immediately and schedules
the detection-dependent ones one detection-delay later (§3.7's bound:
``heartbeat_interval * (miss_threshold + 1)``).
"""

from typing import Dict, List, Optional, Tuple

from repro.chaos.invariants import InvariantChecker
from repro.chaos.schedule import PARTITION_FACTOR, FaultEvent, FaultSchedule
from repro.errors import ConfigError


class ChaosTally:
    """Operation outcomes as seen by the chaos clients.

    Each entry is ``(issued_at_us, ok, attempts)`` -- enough to compute
    availability inside/outside failure windows and retry counts without
    keeping any wall-clock state (everything replays deterministically).
    """

    def __init__(self) -> None:
        self.reads: List[Tuple[float, bool, int]] = []
        self.writes: List[Tuple[float, bool, int]] = []

    def note_read(self, issued_at: float, ok: bool, attempts: int) -> None:
        self.reads.append((issued_at, ok, attempts))

    def note_write(self, issued_at: float, ok: bool, attempts: int) -> None:
        self.writes.append((issued_at, ok, attempts))


class ChaosInjector:
    """Replays a schedule, tracks outcomes, audits invariants."""

    def __init__(self, rack, schedule: FaultSchedule, manager) -> None:
        self.rack = rack
        self.sim = rack.sim
        self.schedule = schedule
        self.manager = manager
        self.checker = InvariantChecker(rack)
        self.tally = ChaosTally()
        #: Executed event log: (sim_us, kind, resolved target).
        self.executed: List[Tuple[float, str, str]] = []
        self.crashes: List[Tuple[float, str]] = []
        self.recovers: List[Tuple[float, str]] = []
        self.rereplications_done: List[Tuple[float, str]] = []
        self._rereplicate_procs: List = []
        self._armed = False

    # ------------------------------------------------------------- arming

    def arm(self) -> None:
        if self._armed:
            return
        self._armed = True
        for event in self.schedule.sorted_events():
            self.sim.call_at(event.at_us, lambda e=event: self._execute(e))

    # -------------------------------------------------------- target maps

    def _resolve_server_ip(self, target: str) -> str:
        rack = self.rack
        if target.startswith("server:"):
            idx = int(target.split(":", 1)[1])
            if not 0 <= idx < len(rack.servers):
                raise ConfigError(f"no server slot {idx} (have {len(rack.servers)})")
            return rack.servers[idx].ip
        if target.startswith("pair:"):
            parts = target.split(":")
            pair = self._resolve_pair(":".join(parts[:2]))
            role = parts[2] if len(parts) > 2 else "primary"
            if role == "primary":
                return pair.primary_server_ip
            if role == "replica":
                return pair.replica_server_ip
            raise ConfigError(f"pair member must be primary|replica, got {role!r}")
        if target in rack.server_by_ip:
            return target
        raise ConfigError(f"cannot resolve server target {target!r}")

    def _resolve_pair(self, target: str):
        if not target.startswith("pair:"):
            raise ConfigError(f"expected pair:<idx>, got {target!r}")
        idx = int(target.split(":")[1])
        if not 0 <= idx < len(self.rack.pairs):
            raise ConfigError(f"no pair {idx} (have {len(self.rack.pairs)})")
        return self.rack.pairs[idx]

    # ---------------------------------------------------------- execution

    def _execute(self, event: FaultEvent) -> None:
        kind = event.kind
        resolved = event.target
        if kind == "server_crash":
            resolved = self._resolve_server_ip(event.target)
            self.manager.fail_server(resolved)
            self.crashes.append((self.sim.now, resolved))
        elif kind == "server_recover":
            resolved = self._resolve_server_ip(event.target)
            self.manager.recover_server(resolved)
            self.recovers.append((self.sim.now, resolved))
        elif kind == "rereplicate":
            pair = self._resolve_pair(event.target)
            process = self.sim.spawn(self.manager.rereplicate_pair(pair))
            process.add_callback(lambda _ev, p=pair: self._rereplicate_done(p))
            self._rereplicate_procs.append(process)
        elif kind in ("link_degrade", "link_restore", "link_partition"):
            self._apply_link(event)
        elif kind == "channel_stall":
            resolved = self._resolve_server_ip(event.target)
            self._stall_channels(resolved, event.param("duration_us", 5_000.0))
        elif kind == "switch_fail_recover":
            self.manager.fail_and_recover_switch()
        elif kind == "heartbeat_jitter":
            self._jitter_heartbeats(
                event.param("factor", 4.0), event.param("duration_us", 20_000.0)
            )
        else:  # pragma: no cover - schedule validation rejects these
            raise ConfigError(f"unknown fault kind {kind!r}")
        self.executed.append((self.sim.now, kind, resolved))
        self._post_event(kind)

    def _apply_link(self, event: FaultEvent) -> None:
        if event.kind == "link_partition":
            factor = PARTITION_FACTOR
        elif event.kind == "link_restore":
            factor = 1.0
        else:
            factor = event.param("factor", 4.0)
        target = event.target or "all"
        if target == "all":
            self.rack.set_link_degradation(factor)
        elif target == "fabric":
            self.rack.latency.set_degradation(factor)
        else:
            self.rack.latency_for_client(target).set_degradation(factor)

    def _stall_channels(self, server_ip: str, duration_us: float) -> None:
        """Occupy every flash channel bus behind a server's vSSDs.

        The stall rides the normal channel arbitration (an untyped bus
        occupancy), so queued I/O behind it sees real head-of-line delay
        rather than a modelled penalty.
        """
        server = self.rack.server_by_ip[server_ip]
        seen = set()
        for vssd in server.vssds:
            for channel in vssd.ssd.channels:
                if id(channel) in seen:
                    continue
                seen.add(id(channel))
                self.sim.spawn(channel.execute("stall", duration_us))

    def _jitter_heartbeats(self, factor: float, duration_us: float) -> None:
        base = self.manager.heartbeat_interval_us
        self.manager.heartbeat_interval_us = base * factor
        self.sim.schedule_after(
            duration_us, lambda: setattr(self.manager, "heartbeat_interval_us", base)
        )

    def _rereplicate_done(self, pair) -> None:
        self.rereplications_done.append((self.sim.now, pair.name))
        self.executed.append((self.sim.now, "rereplicate_done", pair.name))
        self._post_event("rereplicate_done")

    # ------------------------------------------------------------- audits

    def _post_event(self, kind: str) -> None:
        checker = self.checker
        checker.check_durable_writes(kind)
        checker.check_switch_tables(kind)
        delay = self.manager.detection_delay_us
        self.sim.schedule_after(
            delay, lambda: checker.check_reads_routable(f"{kind}+detection")
        )
        if kind in ("server_recover", "rereplicate_done"):
            self.sim.schedule_after(
                delay, lambda: checker.check_replication_factor(f"{kind}+settle")
            )

    def finish(self, margin_us: float = 10_000.0, chunk_us: float = 50_000.0) -> None:
        """Advance the sim past the schedule and run the final audit.

        Called by the batch runner after foreground traffic drains so
        trailing events (late recoveries, deferred checks) still fire
        even when clients finished early.
        """
        horizon = (
            self.schedule.horizon_us()
            + 2.0 * self.manager.detection_delay_us
            + margin_us
        )
        while self.sim.now < horizon:
            self.sim.run(until=min(horizon, self.sim.now + chunk_us))
        # Re-replication copies live data page by page through the flash
        # channels, which can outlast the schedule's own horizon; the
        # scenario isn't over until the pair is whole again.
        deadline = self.sim.now + 600.0 * 1_000_000.0
        while (
            any(not p.triggered for p in self._rereplicate_procs)
            and self.sim.now < deadline
        ):
            self.sim.run(until=self.sim.now + chunk_us)
        # One more detection window so the settle-delayed checks fire.
        settle = self.sim.now + self.manager.detection_delay_us
        while self.sim.now < settle:
            self.sim.run(until=min(settle, self.sim.now + chunk_us))
        self.checker.check_all("final")
        if not self.rack.failed_ips:
            self.checker.check_replication_factor("final")

    # ----------------------------------------------------------- accounts

    def failure_windows(self, until: Optional[float] = None) -> List[Tuple[float, float]]:
        """(start, end) outage windows per crash, closed by the matching
        recovery or the end of the run."""
        end_default = self.sim.now if until is None else until
        recovers = list(self.recovers)
        windows = []
        for crash_at, ip in self.crashes:
            end = end_default
            for rec_at, rec_ip in recovers:
                if rec_ip == ip and rec_at >= crash_at:
                    end = rec_at
                    recovers.remove((rec_at, rec_ip))
                    break
            windows.append((crash_at, end))
        return windows

    def mttr_values_us(self) -> List[float]:
        """Crash-to-detection latency per crash (the repair trigger)."""
        values = []
        for crash_at, ip in self.crashes:
            detected = self.manager.detected_at.get(ip)
            if detected is not None and detected >= crash_at:
                values.append(detected - crash_at)
        return values

    def counters(self) -> Dict[str, float]:
        """Flat, deterministic summary (merged into metrics as chaos_*)."""
        windows = self.failure_windows()

        def in_window(t: float) -> bool:
            return any(start <= t < end for start, end in windows)

        def bucket(entries):
            total = len(entries)
            ok = sum(1 for _, success, _ in entries if success)
            retries = sum(attempts - 1 for _, _, attempts in entries)
            win = [e for e in entries if in_window(e[0])]
            win_ok = sum(1 for _, success, _ in win if success)
            return total, ok, retries, len(win), win_ok

        r_total, r_ok, r_retries, r_win, r_win_ok = bucket(self.tally.reads)
        w_total, w_ok, w_retries, w_win, w_win_ok = bucket(self.tally.writes)
        mttr = self.mttr_values_us()
        out = {
            "events": float(len(self.executed)),
            "crashes": float(len(self.crashes)),
            "recoveries": float(len(self.recovers)),
            "rereplications": float(len(self.rereplications_done)),
            "detections": float(self.manager.failures_detected),
            "mttr_mean_us": sum(mttr) / len(mttr) if mttr else 0.0,
            "read_attempts": float(r_total),
            "read_failures": float(r_total - r_ok),
            "read_retries": float(r_retries),
            "write_attempts": float(w_total),
            "write_failures": float(w_total - w_ok),
            "write_retries": float(w_retries),
            "window_reads": float(r_win),
            "window_read_availability_pct": (
                100.0 * r_win_ok / r_win if r_win else 100.0
            ),
            "window_writes": float(w_win),
            "window_write_availability_pct": (
                100.0 * w_win_ok / w_win if w_win else 100.0
            ),
            "invariant_checks": float(self.checker.checks_run),
            "invariant_violations": float(len(self.checker.violations)),
            "lost_acked_writes": float(self.checker.lost_acked_writes),
        }
        return out
