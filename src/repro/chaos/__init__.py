"""Deterministic fault injection and recovery-invariant auditing (§3.7).

Only the schedule model is imported eagerly: ``RackConfig`` embeds a
:class:`FaultSchedule`, and importing the injector here would close an
import cycle back through ``repro.cluster``.  The heavier pieces load
lazily via PEP 562.
"""

from repro.chaos.schedule import EVENT_KINDS, FaultEvent, FaultSchedule, PARTITION_FACTOR

_LAZY = {
    "ChaosInjector": ("repro.chaos.injector", "ChaosInjector"),
    "ChaosTally": ("repro.chaos.injector", "ChaosTally"),
    "InvariantChecker": ("repro.chaos.invariants", "InvariantChecker"),
    "InvariantViolation": ("repro.chaos.invariants", "InvariantViolation"),
    "resolve_read_destination": ("repro.chaos.invariants", "resolve_read_destination"),
    "ChaosClient": ("repro.chaos.client", "ChaosClient"),
    "ChaosReport": ("repro.chaos.runner", "ChaosReport"),
    "run_chaos_experiment": ("repro.chaos.runner", "run_chaos_experiment"),
}

__all__ = [
    "EVENT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "PARTITION_FACTOR",
    *sorted(_LAZY),
]


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
