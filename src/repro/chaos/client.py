"""A failure-aware batch client: per-attempt timeouts and retries.

The plain :class:`~repro.cluster.client.Client` has no timeout -- a
packet dropped at a dead server's NIC would park it forever.  During
chaos runs each operation instead races a per-attempt timeout (from the
schedule's ``op_timeout_us``) and retries up to ``max_attempts`` times,
which is exactly what gives reads issued inside the detection blind
window a second try after the switch's GC-bit redirect kicks in.
Outcomes land in the injector's tally (availability/MTTR accounting) and
acknowledged writes are registered with the invariant checker as
durability obligations.
"""

from typing import Generator

from repro.cluster.client import Client
from repro.errors import ConfigError
from repro.sim import AnyOf, Timeout


class ChaosClient(Client):
    """Open-loop client with timeout + retry, bound to an armed rack."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.rack.chaos is None:
            raise ConfigError("ChaosClient needs a rack with an armed fault schedule")
        self.hub = self.rack.chaos
        schedule = self.hub.schedule
        self.op_timeout_us = schedule.op_timeout_us
        self.max_attempts = schedule.max_attempts

    def _issue_read(self, lpn: int) -> Generator:
        t0 = self.sim.now
        attempts = 0
        while attempts < self.max_attempts:
            attempts += 1
            done = self.rack.issue_read(self.pair, lpn, client=self.name)
            yield AnyOf(self.sim, [done, Timeout(self.sim, self.op_timeout_us)])
            if done.triggered:
                response = done.value
                self.metrics.record(
                    "read",
                    self.sim.now - t0,
                    at=self.sim.now,
                    storage_us=response.payload.get("storage_us"),
                )
                self.hub.tally.note_read(t0, True, attempts)
                self._note_done()
                return
        self.hub.tally.note_read(t0, False, attempts)
        self._note_done()

    def _issue_write(self, lpn: int) -> Generator:
        t0 = self.sim.now
        attempts = 0
        while attempts < self.max_attempts:
            attempts += 1
            done = self.rack.issue_write(self.pair, lpn, client=self.name)
            yield AnyOf(self.sim, [done, Timeout(self.sim, self.op_timeout_us)])
            if done.triggered and done.value:
                responses = done.value
                storage_us = max(
                    (r.payload.get("storage_us", 0.0) for r in responses),
                    default=None,
                )
                self.metrics.record(
                    "write", self.sim.now - t0, at=self.sim.now, storage_us=storage_us
                )
                self.hub.tally.note_write(t0, True, attempts)
                self.hub.checker.note_acked_write(self.pair, lpn)
                self._note_done()
                return
            if done.triggered and not done.value:
                # Every in-rack replica the membership view knows about is
                # down: the fan-out acked vacuously.  Back off one timeout
                # and retry rather than claiming durability.
                yield Timeout(self.sim, self.op_timeout_us)
        self.hub.tally.note_write(t0, False, attempts)
        self._note_done()
