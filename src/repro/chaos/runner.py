"""Batch chaos experiments: replay a schedule, report availability/MTTR.

Everything in a :class:`ChaosReport` derives from simulated time and
counters, never from the wall clock, so two replays of the same schedule
against the same config print byte-identical reports -- the determinism
contract the CLI (and CI) check by diffing two runs.
"""

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.chaos.schedule import FaultSchedule
from repro.errors import ConfigError


@dataclass
class ChaosReport:
    """Deterministic summary of one fault-injection run."""

    counters: Dict[str, float]
    events: List[Tuple[float, str, str]]
    violations: List[str]
    failure_windows: List[Tuple[float, float]]
    mttr_values_us: List[float]
    detection_delay_bound_us: float
    metrics_summary: Dict[str, float] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """The acceptance bar: no invariant broke, no acked write lost,
        and reads stayed >= 99% available inside failure windows."""
        if self.violations:
            return False
        if self.counters.get("lost_acked_writes", 0.0) > 0:
            return False
        if self.counters.get("window_reads", 0.0) > 0:
            return self.counters["window_read_availability_pct"] >= 99.0
        return True

    def as_dict(self) -> Dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "events": [list(e) for e in self.events],
            "violations": list(self.violations),
            "failure_windows": [list(w) for w in self.failure_windows],
            "mttr_values_us": list(self.mttr_values_us),
            "detection_delay_bound_us": self.detection_delay_bound_us,
            "metrics_summary": dict(self.metrics_summary),
        }

    def describe(self) -> str:
        c = self.counters
        lines = [
            "chaos report",
            "------------",
            f"events executed      : {int(c['events'])}",
            f"crashes / recoveries : {int(c['crashes'])} / {int(c['recoveries'])}",
            f"detections           : {int(c['detections'])}"
            f" (bound {self.detection_delay_bound_us:.0f} us)",
            f"re-replications      : {int(c['rereplications'])}",
            f"mean MTTR            : {c['mttr_mean_us']:.0f} us",
            "",
            f"reads  : {int(c['read_attempts'])} ops, "
            f"{int(c['read_failures'])} failed, {int(c['read_retries'])} retried",
            f"writes : {int(c['write_attempts'])} ops, "
            f"{int(c['write_failures'])} failed, {int(c['write_retries'])} retried",
            f"failure-window read availability  : "
            f"{c['window_read_availability_pct']:.2f}% "
            f"({int(c['window_reads'])} reads in window)",
            f"failure-window write availability : "
            f"{c['window_write_availability_pct']:.2f}% "
            f"({int(c['window_writes'])} writes in window)",
            "",
            f"invariant checks     : {int(c['invariant_checks'])}",
            f"invariant violations : {int(c['invariant_violations'])}",
            f"lost acked writes    : {int(c['lost_acked_writes'])}",
        ]
        for label in ("read_p99_us", "write_p99_us"):
            if label in self.metrics_summary:
                lines.append(f"{label:<21}: {self.metrics_summary[label]:.1f}")
        if "redirected_reads" in self.metrics_summary:
            lines.append(
                f"redirected reads     : "
                f"{int(self.metrics_summary['redirected_reads'])}"
            )
        lines.append("")
        lines.append("timeline (sim us):")
        for at, kind, target in self.events:
            lines.append(f"  {at:>12.0f}  {kind:<22} {target}")
        if self.violations:
            lines.append("")
            lines.append("VIOLATIONS:")
            lines.extend(f"  {v}" for v in self.violations)
        lines.append("")
        lines.append("verdict: " + ("CLEAN" if self.clean else "VIOLATED"))
        return "\n".join(lines)


def build_report(rack, metrics_summary: Dict[str, float]) -> ChaosReport:
    injector = rack.chaos
    if injector is None:
        raise ConfigError("rack has no armed fault schedule")
    return ChaosReport(
        counters=injector.counters(),
        events=list(injector.executed),
        violations=[str(v) for v in injector.checker.violations],
        failure_windows=injector.failure_windows(),
        mttr_values_us=injector.mttr_values_us(),
        detection_delay_bound_us=injector.manager.detection_delay_us,
        metrics_summary=metrics_summary,
    )


def run_chaos_experiment(
    config,
    workload,
    requests_per_pair: int = 1500,
    rate_iops_per_pair: float = 3000.0,
    working_set_fraction: float = 0.5,
):
    """Run one schedule-armed rack experiment; returns (result, report)."""
    # Imported here: experiments.runner -> cluster.rack -> chaos would
    # otherwise be circular at module-import time.
    from repro.cluster.rack import Rack
    from repro.experiments.runner import run_rack_experiment

    if config.fault_schedule is None:
        raise ConfigError(
            "run_chaos_experiment needs a config with fault_schedule set"
        )
    if not isinstance(config.fault_schedule, FaultSchedule):
        raise ConfigError("fault_schedule must be a FaultSchedule")
    rack = Rack(config)
    result = run_rack_experiment(
        config,
        workload,
        requests_per_pair=requests_per_pair,
        rate_iops_per_pair=rate_iops_per_pair,
        working_set_fraction=working_set_fraction,
        rack=rack,
    )
    # Exclude wall-clock-dependent keys: the report must replay exactly.
    summary = {
        k: v
        for k, v in result.summary().items()
        if k not in ("wall_clock_s", "events_per_sec")
    }
    return result, build_report(rack, summary)
