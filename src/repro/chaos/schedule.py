"""Declarative fault-injection schedules.

A :class:`FaultSchedule` is a plain, immutable description of *when* the
rack breaks and *how*: a tuple of timed :class:`FaultEvent` records plus
the failure-detection parameters (heartbeat interval, miss threshold)
and the chaos client's retry policy.  Because the schedule is pure data
-- hashable, picklable, JSON round-trippable -- it can ride inside
``RackConfig`` overrides, cross the ``ParallelRunner`` process pool, and
replay bit-for-bit: the only randomness is in :meth:`FaultSchedule.random`,
which derives its generator from the same ``"{seed}:{name}"`` substream
convention as :class:`repro.sim.rng.RandomSource`, so generated schedules
are as reproducible as everything else in the simulator.

Event kinds
-----------

========================  ==========================================  ==============================
kind                      target                                      params
========================  ==========================================  ==============================
``server_crash``          ``server:<idx>`` | ``pair:<idx>:primary``   --
``server_recover``        same as ``server_crash``                    --
``rereplicate``           ``pair:<idx>``                              --
``link_degrade``          ``all`` | ``fabric`` | client name          ``factor`` (>= 1)
``link_restore``          same as ``link_degrade``                    --
``link_partition``        same as ``link_degrade``                    --
``channel_stall``         ``server:<idx>`` | ``pair:<idx>:replica``   ``duration_us``
``switch_fail_recover``   --                                          --
``heartbeat_jitter``      --                                          ``factor``, ``duration_us``
========================  ==========================================  ==============================

A ``server:`` target names a rack slot (``rack.servers[idx]``); a
``pair:`` target resolves through the replica pair at execution time, so
it follows the pair across re-replication.  Raw ``10.0.0.x`` addresses
are accepted too.
"""

import json
import random
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.errors import ConfigError

EVENT_KINDS = (
    "server_crash",
    "server_recover",
    "rereplicate",
    "link_degrade",
    "link_restore",
    "link_partition",
    "channel_stall",
    "switch_fail_recover",
    "heartbeat_jitter",
)

# Kinds whose semantics require a target; the rest may leave it empty.
_TARGETED_KINDS = frozenset(
    {"server_crash", "server_recover", "rereplicate", "channel_stall"}
)


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault, ``at_us`` microseconds into the run.

    ``rack`` qualifies the event for sharded serving: ``None`` (the
    default) broadcasts the event to every rack, ``rack=i`` scopes it to
    rack ``i`` only -- :meth:`FaultSchedule.for_rack` does the slicing
    when the router derives per-rack configs.  Single-rack runs ignore
    the qualifier entirely.
    """

    at_us: float
    kind: str
    target: str = ""
    params: Tuple[Tuple[str, float], ...] = ()
    rack: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; choose from {EVENT_KINDS}"
            )
        if self.rack is not None:
            if not isinstance(self.rack, int) or isinstance(self.rack, bool):
                raise ConfigError(
                    f"fault rack must be an integer rack index, "
                    f"got {self.rack!r}"
                )
            if self.rack < 0:
                raise ConfigError(
                    f"fault rack must be >= 0, got {self.rack}"
                )
        if self.at_us < 0:
            raise ConfigError(f"fault at_us must be >= 0, got {self.at_us!r}")
        if self.kind in _TARGETED_KINDS and not self.target:
            raise ConfigError(f"fault kind {self.kind!r} needs a target")
        for name, value in self.params:
            if not isinstance(name, str):
                raise ConfigError(f"param name must be a string, got {name!r}")
            float(value)  # must be numeric
        factor = self.param("factor", 1.0)
        if factor < 1.0:
            raise ConfigError(
                f"{self.kind} factor must be >= 1 (got {factor}); use "
                "link_restore to clear a degradation"
            )
        if self.param("duration_us", 0.0) < 0:
            raise ConfigError(f"{self.kind} duration_us must be >= 0")

    def param(self, name: str, default: float = 0.0) -> float:
        for key, value in self.params:
            if key == name:
                return float(value)
        return float(default)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"at_us": self.at_us, "kind": self.kind}
        if self.target:
            out["target"] = self.target
        if self.rack is not None:
            out["rack"] = self.rack
        out.update({k: v for k, v in self.params})
        return out

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FaultEvent":
        if not isinstance(raw, dict):
            raise ConfigError(f"fault event must be an object, got {raw!r}")
        if "kind" not in raw or "at_us" not in raw:
            raise ConfigError(f"fault event needs 'kind' and 'at_us': {raw!r}")
        params = tuple(
            sorted(
                (key, float(value))
                for key, value in raw.items()
                if key not in ("at_us", "kind", "target", "rack")
            )
        )
        rack = raw.get("rack")
        return cls(
            at_us=float(raw["at_us"]),
            kind=str(raw["kind"]),
            target=str(raw.get("target", "")),
            params=params,
            rack=int(rack) if rack is not None else None,
        )


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered set of faults plus the detection / retry parameters.

    ``heartbeat_interval_us`` and ``miss_threshold`` configure the
    :class:`~repro.cluster.failures.FailureManager` driving the run, so
    the detection-delay bound ``heartbeat_interval_us * (miss_threshold
    + 1)`` replays identically with the schedule.  ``op_timeout_us`` and
    ``max_attempts`` are the chaos client's per-attempt timeout and
    retry budget.
    """

    events: Tuple[FaultEvent, ...] = ()
    heartbeat_interval_us: float = 2_000.0
    miss_threshold: int = 2
    op_timeout_us: float = 15_000.0
    max_attempts: int = 4

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        if self.heartbeat_interval_us <= 0:
            raise ConfigError("heartbeat_interval_us must be positive")
        if self.miss_threshold < 1:
            raise ConfigError("miss_threshold must be >= 1")
        if self.op_timeout_us <= 0:
            raise ConfigError("op_timeout_us must be positive")
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")

    # ------------------------------------------------------------- views

    @property
    def detection_delay_us(self) -> float:
        """Upper bound on crash-to-detection latency (see FailureManager)."""
        return self.heartbeat_interval_us * (self.miss_threshold + 1)

    def horizon_us(self) -> float:
        """Sim time by which every scheduled fault has started and ended."""
        horizon = 0.0
        for event in self.events:
            horizon = max(horizon, event.at_us + event.param("duration_us", 0.0))
        return horizon

    def sorted_events(self) -> Tuple[FaultEvent, ...]:
        return tuple(sorted(self.events, key=lambda e: (e.at_us, e.kind, e.target)))

    def with_events(self, events: Iterable[FaultEvent]) -> "FaultSchedule":
        return replace(self, events=tuple(events))

    def for_rack(self, rack: int) -> "FaultSchedule":
        """The slice of this schedule rack ``rack`` executes.

        Events with no ``rack`` qualifier broadcast to every rack;
        qualified events fire only on their rack.  Detection and retry
        parameters carry over unchanged, so per-rack replicas of a
        schedule share one failure-detection configuration.
        """
        if rack < 0:
            raise ConfigError(f"rack must be >= 0, got {rack}")
        return self.with_events(
            event for event in self.events
            if event.rack is None or event.rack == rack
        )

    # ------------------------------------------------------------ JSON IO

    def to_dict(self) -> Dict[str, Any]:
        return {
            "heartbeat_interval_us": self.heartbeat_interval_us,
            "miss_threshold": self.miss_threshold,
            "op_timeout_us": self.op_timeout_us,
            "max_attempts": self.max_attempts,
            "events": [event.to_dict() for event in self.sorted_events()],
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FaultSchedule":
        if not isinstance(raw, dict):
            raise ConfigError(f"fault schedule must be an object, got {type(raw).__name__}")
        events = raw.get("events", [])
        if not isinstance(events, list):
            raise ConfigError("fault schedule 'events' must be a list")
        return cls(
            events=tuple(FaultEvent.from_dict(e) for e in events),
            heartbeat_interval_us=float(raw.get("heartbeat_interval_us", 2_000.0)),
            miss_threshold=int(raw.get("miss_threshold", 2)),
            op_timeout_us=float(raw.get("op_timeout_us", 15_000.0)),
            max_attempts=int(raw.get("max_attempts", 4)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid fault schedule JSON: {exc}") from exc
        return cls.from_dict(raw)

    @classmethod
    def from_json_file(cls, path: str) -> "FaultSchedule":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise ConfigError(f"cannot read fault schedule {path!r}: {exc}") from exc
        return cls.from_json(text)

    # --------------------------------------------------------- generation

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        num_servers: int = 4,
        num_crashes: int = 2,
        horizon_us: float = 300_000.0,
        heartbeat_interval_us: float = 2_000.0,
        miss_threshold: int = 2,
        include_link_faults: bool = True,
    ) -> "FaultSchedule":
        """A reproducible crash/recover storm derived from ``seed``.

        Uses the ``"{seed}:chaos"`` substream so the schedule is as
        deterministic as the rack it will be injected into, and adding
        chaos never perturbs the other named RNG streams.
        """
        if num_servers < 2:
            raise ConfigError("random schedule needs at least 2 servers")
        rng = random.Random(f"{seed}:chaos")
        detection = heartbeat_interval_us * (miss_threshold + 1)
        events = []
        slot = horizon_us / max(1, num_crashes)
        for i in range(num_crashes):
            crash_at = i * slot + rng.uniform(0.1, 0.3) * slot
            downtime = rng.uniform(0.35, 0.55) * slot
            # Leave the recovery clear of the detection bound so the
            # outage is always observable.
            downtime = max(downtime, 3.0 * detection)
            server = rng.randrange(num_servers)
            events.append(FaultEvent(crash_at, "server_crash", f"server:{server}"))
            events.append(
                FaultEvent(crash_at + downtime, "server_recover", f"server:{server}")
            )
        if include_link_faults:
            at = rng.uniform(0.55, 0.7) * horizon_us
            span = rng.uniform(0.08, 0.15) * horizon_us
            factor = rng.choice([2.0, 4.0, 8.0])
            events.append(
                FaultEvent(at, "link_degrade", "all", (("factor", factor),))
            )
            events.append(FaultEvent(at + span, "link_restore", "all"))
        return cls(
            events=tuple(sorted(events, key=lambda e: (e.at_us, e.kind, e.target))),
            heartbeat_interval_us=heartbeat_interval_us,
            miss_threshold=miss_threshold,
        )


# Latency multiplier used for ``link_partition``: large enough that no
# packet delivered through a partitioned link lands inside any plausible
# run horizon, so a partition behaves as total loss without a new
# drop mechanism in the latency model.
PARTITION_FACTOR = 1.0e9


__all__ = [
    "EVENT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "PARTITION_FACTOR",
]
