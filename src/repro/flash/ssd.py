"""Whole-SSD assembly: channels, chips, and wear tracking.

An :class:`Ssd` is the physical device a storage server plugs in.  vSSD
instances (see :mod:`repro.vssd`) are carved out of its channels or chips;
the SSD itself only owns the hardware resources and the wear statistics
used by the rack-scale wear-leveling machinery.
"""

from typing import List

from repro.errors import ConfigError
from repro.flash.channel import Channel
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import DeviceProfile, PSSD
from repro.flash.wear import WearTracker
from repro.sim import Simulator


class Ssd:
    """One physical SSD: ``geometry.channels`` channels of chips."""

    def __init__(
        self,
        sim: Simulator,
        ssd_id: str,
        geometry: FlashGeometry = FlashGeometry(),
        profile: DeviceProfile = PSSD,
    ) -> None:
        self.sim = sim
        self.ssd_id = ssd_id
        self.geometry = geometry
        self.profile = profile
        self.channels: List[Channel] = [
            Channel(sim, channel_id, profile) for channel_id in range(geometry.channels)
        ]
        self.chips: List[FlashChip] = [
            FlashChip(chip_id, geometry.blocks_per_chip, geometry.pages_per_block)
            for chip_id in range(geometry.total_chips)
        ]
        self.wear = WearTracker(self.chips)
        #: Cumulative logical data written to this device (pages), updated
        #: by the vSSD layer; feeds the wear-*rate* estimate used when the
        #: local balancer picks its swap partner.
        self.pages_written = 0

    def channel_of_chip(self, chip: FlashChip) -> Channel:
        """The channel that serves a given chip."""
        return self.channels[self.geometry.channel_of_chip(chip.chip_id)]

    def chips_of_channel(self, channel_id: int) -> List[FlashChip]:
        """All chips behind one channel."""
        if not 0 <= channel_id < self.geometry.channels:
            raise ConfigError(
                f"channel {channel_id} out of range [0,{self.geometry.channels})"
            )
        per = self.geometry.chips_per_channel
        return self.chips[channel_id * per : (channel_id + 1) * per]

    @property
    def average_erase_count(self) -> float:
        """φ for this SSD (the wear-leveling currency)."""
        return self.wear.average_erase_count()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Ssd(id={self.ssd_id!r}, profile={self.profile.name}, "
            f"channels={self.geometry.channels})"
        )
