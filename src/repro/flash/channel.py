"""The flash channel: the serialisation point of an SSD.

Each channel carries commands for the chips behind it, one at a time.  A
long-running erase or GC migration occupies the channel and stalls every
queued request -- this is precisely the head-of-line blocking that
RackBlox's coordinated GC routes around.
"""

from typing import Generator

from repro.sim import Resource, Simulator, Timeout
from repro.flash.timing import DeviceProfile


class Channel:
    """One channel as a capacity-1 resource with timed operations."""

    def __init__(self, sim: Simulator, channel_id: int, profile: DeviceProfile) -> None:
        self.sim = sim
        self.channel_id = channel_id
        self.profile = profile
        self._bus = Resource(sim, capacity=1)
        #: Accumulated busy time, for utilisation reporting.
        self.busy_time = 0.0
        #: Commands served, by kind.
        self.op_counts = {"read": 0, "program": 0, "erase": 0}
        #: Erase suspend/resume (program/erase suspension is the classic
        #: firmware-level mitigation for GC read-blocking -- e.g.
        #: TinyTail/FAST'17 [88]).  Off by default: the paper's devices do
        #: a plain threshold GC; the ablation bench turns it on.
        self.suspend_enabled = False
        self.suspend_slice_us = 500.0
        self.resume_penalty_us = 50.0
        self.suspensions = 0

    def configure_suspend(
        self,
        enabled: bool,
        slice_us: float = 500.0,
        resume_penalty_us: float = 50.0,
    ) -> None:
        """Enable/disable erase suspension and its cost model."""
        if slice_us <= 0 or resume_penalty_us < 0:
            raise ValueError("slice must be positive, penalty non-negative")
        self.suspend_enabled = enabled
        self.suspend_slice_us = slice_us
        self.resume_penalty_us = resume_penalty_us

    @property
    def queue_depth(self) -> int:
        """Commands waiting for the bus (excludes the one in service)."""
        return self._bus.queued

    @property
    def busy(self) -> bool:
        return self._bus.in_use > 0

    def execute(self, kind: str, duration: float) -> Generator:
        """Process: occupy the channel for ``duration`` microseconds."""
        yield self._bus.acquire()
        try:
            yield Timeout(self.sim, duration)
            self.busy_time += duration
            if kind in self.op_counts:
                self.op_counts[kind] += 1
        finally:
            self._bus.release()

    def read_page(self, size_kb: float) -> Generator:
        """Process: one page read (array sense + bus transfer)."""
        return self.execute("read", self.profile.read_latency(size_kb))

    def program_page(self, size_kb: float) -> Generator:
        """Process: one page program (bus transfer + array program)."""
        return self.execute("program", self.profile.program_latency(size_kb))

    def erase_block(self) -> Generator:
        """Process: one block erase (suspendable when configured).

        With suspension enabled, the erase runs in slices and yields the
        bus between slices whenever commands are waiting -- a queued read
        stalls for at most one slice instead of the full erase.  Each
        actual suspension costs a resume penalty, stretching the erase.
        """
        if not self.suspend_enabled:
            return self.execute("erase", self.profile.erase_us)
        return self._suspendable_erase()

    def _suspendable_erase(self) -> Generator:
        remaining = self.profile.erase_us
        while remaining > 0:
            this_slice = min(self.suspend_slice_us, remaining)
            yield self._bus.acquire()
            try:
                yield Timeout(self.sim, this_slice)
                self.busy_time += this_slice
            finally:
                must_yield = remaining > this_slice and self._bus.queued > 0
                self._bus.release()
            remaining -= this_slice
            if remaining > 0 and must_yield:
                # Someone was waiting: the erase actually suspended and
                # will pay the resume overhead when it reacquires.
                self.suspensions += 1
                remaining += self.resume_penalty_us
        self.op_counts["erase"] += 1

    def utilization(self, now: float) -> float:
        """Fraction of elapsed simulated time the channel was busy."""
        if now <= 0:
            return 0.0
        return min(1.0, self.busy_time / now)
