"""Background media scrubbing (patrol reads).

Firmware periodically walks the written blocks, reading pages through the
ECC engine to catch latent errors before they accumulate past the
correction budget.  Blocks whose reads need heavy correction (or go
uncorrectable) are flagged for retirement -- the grown-bad-block feed of
:class:`~repro.flash.firmware.BadBlockManager`.

The scrubber runs as a low-priority simulated process: each patrol read
occupies the block's channel like any other command, so scrubbing load is
visible to foreground traffic exactly as in real devices.
"""

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Set, Tuple

from repro.errors import ConfigError
from repro.flash.firmware import EccConfig, EccEngine
from repro.flash.ssd import Ssd
from repro.sim import Timeout
from repro.sim.core import MSEC


@dataclass
class ScrubReport:
    """Outcome of scrubbing activity so far."""

    pages_scrubbed: int = 0
    bits_corrected: int = 0
    uncorrectable_pages: int = 0
    #: (chip_id, block_id) flagged for retirement.
    flagged_blocks: List[Tuple[int, int]] = field(default_factory=list)


class Scrubber:
    """Patrol-read walker over one SSD's written blocks."""

    def __init__(
        self,
        ssd: Ssd,
        ecc: Optional[EccEngine] = None,
        pages_per_round: int = 16,
        round_interval_us: float = 50 * MSEC,
        flag_threshold_bits: int = 30,
    ) -> None:
        if pages_per_round < 1:
            raise ConfigError("pages_per_round must be >= 1")
        if round_interval_us <= 0:
            raise ConfigError("round interval must be positive")
        if flag_threshold_bits < 1:
            raise ConfigError("flag threshold must be >= 1")
        self.ssd = ssd
        self.sim = ssd.sim
        self.ecc = ecc if ecc is not None else EccEngine(EccConfig())
        self.pages_per_round = pages_per_round
        self.round_interval_us = round_interval_us
        self.flag_threshold_bits = flag_threshold_bits
        self.report = ScrubReport()
        self._flagged: Set[Tuple[int, int]] = set()
        self._cursor = (0, 0)  # (chip index, block index)
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.spawn(self._patrol_loop())

    def _advance_cursor(self) -> Tuple[int, int]:
        chip_idx, block_idx = self._cursor
        block_idx += 1
        if block_idx >= self.ssd.chips[chip_idx].blocks_per_chip:
            block_idx = 0
            chip_idx = (chip_idx + 1) % len(self.ssd.chips)
        self._cursor = (chip_idx, block_idx)
        return self._cursor

    def _patrol_loop(self) -> Generator:
        while True:
            yield Timeout(self.sim, self.round_interval_us)
            yield from self.scrub_round()

    def scrub_round(self) -> Generator:
        """Process: patrol up to ``pages_per_round`` written pages."""
        scanned = 0
        steps = 0
        total_blocks = sum(c.blocks_per_chip for c in self.ssd.chips)
        while scanned < self.pages_per_round and steps < total_blocks:
            steps += 1
            chip_idx, block_idx = self._advance_cursor()
            chip = self.ssd.chips[chip_idx]
            block = chip.blocks[block_idx]
            if block.valid_count == 0:
                continue
            if (chip.chip_id, block.block_id) in self._flagged:
                continue
            channel = self.ssd.channel_of_chip(chip)
            pages = block.valid_pages()[: self.pages_per_round - scanned]
            corrected_in_block = 0
            for _page in pages:
                yield from channel.read_page(4.0)
                outcome, extra_us = self.ecc.read_page(block.erase_count)
                if extra_us > 0:
                    yield Timeout(self.sim, extra_us)
                self.report.pages_scrubbed += 1
                scanned += 1
                if outcome.uncorrectable:
                    self.report.uncorrectable_pages += 1
                    self._flag(chip.chip_id, block.block_id)
                    break
                self.report.bits_corrected += outcome.corrected_bits
                corrected_in_block += outcome.corrected_bits
            if corrected_in_block >= self.flag_threshold_bits:
                self._flag(chip.chip_id, block.block_id)

    def _flag(self, chip_id: int, block_id: int) -> None:
        key = (chip_id, block_id)
        if key not in self._flagged:
            self._flagged.add(key)
            self.report.flagged_blocks.append(key)

    def is_flagged(self, chip_id: int, block_id: int) -> bool:
        return (chip_id, block_id) in self._flagged
