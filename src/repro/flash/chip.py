"""A flash chip: a set of erase blocks behind one channel.

The chip is pure state -- block bookkeeping and free-block accounting.
Timing lives in :mod:`repro.flash.channel`, which serialises operations on
the shared bus, matching the paper's observation that "an SSD channel
cannot issue new I/O requests during GC".
"""

from typing import List, Optional

from repro.errors import FlashError, OutOfSpaceError
from repro.flash.block import Block


class FlashChip:
    """Block bookkeeping for one chip."""

    def __init__(self, chip_id: int, blocks_per_chip: int, pages_per_block: int) -> None:
        self.chip_id = chip_id
        self.blocks: List[Block] = [
            Block(block_id, pages_per_block) for block_id in range(blocks_per_chip)
        ]
        #: Blocks that are fully erased and hold no data, newest last.
        self._free_blocks: List[int] = list(range(blocks_per_chip))

    @property
    def blocks_per_chip(self) -> int:
        return len(self.blocks)

    @property
    def free_block_count(self) -> int:
        return len(self._free_blocks)

    def allocate_block(self) -> Block:
        """Take a free block to use as a new active (write) block."""
        if not self._free_blocks:
            raise OutOfSpaceError(f"chip {self.chip_id} has no free blocks")
        return self.blocks[self._free_blocks.pop(0)]

    def release_block(self, block: Block) -> None:
        """Return an erased block to the free pool."""
        if not block.is_empty:
            raise FlashError(
                f"block {block.block_id} is not erased; cannot release to free pool"
            )
        if block.block_id in self._free_blocks:
            raise FlashError(f"block {block.block_id} is already in the free pool")
        self._free_blocks.append(block.block_id)

    def take_specific_block(self, block_id: int) -> Block:
        """Remove a specific block from the free pool (used by borrowing)."""
        try:
            self._free_blocks.remove(block_id)
        except ValueError:
            raise FlashError(f"block {block_id} is not free on chip {self.chip_id}")
        return self.blocks[block_id]

    def victim_candidates(self) -> List[Block]:
        """Blocks eligible for GC: full (or partially written) with stale pages."""
        return [
            block
            for block in self.blocks
            if block.invalid_count > 0
        ]

    def best_victim(self) -> Optional[Block]:
        """Greedy GC victim: the block with the most invalid pages."""
        candidates = self.victim_candidates()
        if not candidates:
            return None
        return max(candidates, key=lambda b: (b.invalid_count, -b.erase_count))

    @property
    def average_erase_count(self) -> float:
        return sum(b.erase_count for b in self.blocks) / len(self.blocks)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FlashChip(id={self.chip_id}, free_blocks={self.free_block_count})"
