"""Greedy threshold garbage collection.

The paper's default GC is "a greedy, threshold-based GC" (§3.7): when the
free-block ratio falls below a threshold, pick the block with the most
invalid pages, migrate its live pages, and erase it.

:class:`GreedyGcPolicy` produces a :class:`GcResult` describing the *work*
(migrations + erase); the owning vSSD turns that into timed channel
operations so the GC occupies the channel exactly as long as its page moves
and erase take.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.flash.ftl import PageMappedFtl, PhysicalAddr


@dataclass
class GcResult:
    """The outcome of collecting one victim block."""

    victim: PhysicalAddr
    #: (lpn, old address, new address) per migrated page.
    migrations: List[Tuple[int, PhysicalAddr, PhysicalAddr]] = field(
        default_factory=list
    )

    @property
    def pages_moved(self) -> int:
        return len(self.migrations)


class GreedyGcPolicy:
    """Selects victims greedily and applies the state mutation.

    ``collect_once`` performs the FTL state transition for a single victim
    and reports the physical work done; callers replay that work as timed
    operations on the victim's channel.
    """

    def __init__(self, gc_threshold: float = 0.25, soft_threshold: float = 0.35) -> None:
        if not 0.0 < gc_threshold <= soft_threshold < 1.0:
            raise ValueError(
                f"need 0 < gc_threshold <= soft_threshold < 1, got "
                f"{gc_threshold}/{soft_threshold}"
            )
        self.gc_threshold = gc_threshold
        self.soft_threshold = soft_threshold

    def needs_regular_gc(self, ftl: PageMappedFtl) -> bool:
        """Below the hard threshold: GC can no longer be delayed."""
        return ftl.free_block_ratio() < self.gc_threshold

    def wants_soft_gc(self, ftl: PageMappedFtl) -> bool:
        """Below the soft threshold: request GC, accepting a possible delay."""
        return ftl.free_block_ratio() < self.soft_threshold

    def victim_scorer(self, ftl: PageMappedFtl):
        """Block scorer used for victim selection; ``None`` means greedy."""
        return None

    def collect_once(self, ftl: PageMappedFtl) -> Optional[GcResult]:
        """Collect the single best victim; ``None`` when nothing is stale."""
        victim = ftl.select_victim(self.victim_scorer(ftl))
        if victim is None:
            return None
        result = GcResult(victim=victim)
        for lpn in ftl.victim_valid_lpns(victim):
            old, new = ftl.migrate_page(lpn)
            result.migrations.append((lpn, old, new))
        ftl.commit_erase(victim)
        return result

    def collect_until(
        self, ftl: PageMappedFtl, target_ratio: float, max_victims: int = 64
    ) -> List[GcResult]:
        """Collect victims until the free ratio recovers to ``target_ratio``.

        ``max_victims`` bounds runaway collection when the device is full of
        valid data (in which case GC cannot create free space).
        """
        results: List[GcResult] = []
        while ftl.free_block_ratio() < target_ratio and len(results) < max_victims:
            result = self.collect_once(ftl)
            if result is None:
                break
            results.append(result)
        return results

    def work_duration_us(self, result: GcResult, profile) -> float:
        """Channel-occupancy time for the physical work in ``result``."""
        page_kb = 4.0
        per_move = profile.read_latency(page_kb) + profile.program_latency(page_kb)
        return result.pages_moved * per_move + profile.erase_us


class WearAwareGcPolicy(GreedyGcPolicy):
    """Device-level wear leveling folded into victim selection.

    The vSSD's "local wear leveling (i.e., the default wear leveling) for
    flash block management" (§3.3, Figure 4b): instead of pure greed, the
    victim score discounts blocks that have already been erased more than
    their peers, steering erases toward younger blocks and rotating cold
    data out of them.  ``wear_weight`` trades write amplification against
    erase-count spread; 0 reduces to pure greedy.
    """

    def __init__(
        self,
        gc_threshold: float = 0.25,
        soft_threshold: float = 0.35,
        wear_weight: float = 0.5,
    ) -> None:
        super().__init__(gc_threshold=gc_threshold, soft_threshold=soft_threshold)
        if wear_weight < 0:
            raise ValueError(f"wear_weight must be >= 0, got {wear_weight}")
        self.wear_weight = wear_weight

    def victim_scorer(self, ftl: PageMappedFtl):
        total = 0
        count = 0
        for chip in ftl.chips:
            for block in chip.blocks:
                total += block.erase_count
                count += 1
        avg_erase = total / count if count else 0.0

        def score(block) -> float:
            return block.invalid_count - self.wear_weight * (
                block.erase_count - avg_erase
            )

        return score
