"""Firmware-resident reliability machinery: ECC and bad-block management.

The paper keeps these *below* the software-defined boundary: "As for other
FTL functions, such as bad block management and error correction code
(ECC) of an SSD, we leave them to the SSD firmware, as the hardware engine
in SSD controllers is more efficient in managing them" (§3.3).  We model
them so the substrate degrades the way real flash does: raw bit errors
grow with wear, ECC corrects up to its budget, uncorrectable reads trigger
a retry, and blocks that exhaust retries are retired to the bad-block
table and replaced from the free pool.
"""

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.errors import ConfigError, FlashError
from repro.flash.block import Block
from repro.flash.chip import FlashChip

#: Codeword size the ECC engine protects (bytes) -- 1KB codewords with
#: a correction budget per codeword, as in BCH/LDPC-era controllers.
CODEWORD_BYTES = 1024


@dataclass(frozen=True)
class EccConfig:
    """Strength and error-growth parameters of the ECC engine."""

    #: Correctable bits per codeword (BCH-40-over-1KB class).
    correctable_bits: int = 40
    #: Raw bit error rate of a fresh block.
    rber_fresh: float = 1e-7
    #: RBER grows exponentially with erase count: rber(w) =
    #: rber_fresh * exp(w / wear_scale).
    wear_scale: float = 3000.0
    #: Extra latency of one read-retry pass (microseconds).
    retry_latency_us: float = 80.0
    #: Retries before the page is declared uncorrectable.
    max_retries: int = 3

    def __post_init__(self) -> None:
        if self.correctable_bits < 1:
            raise ConfigError("ECC must correct at least one bit")
        if not 0.0 < self.rber_fresh < 1.0:
            raise ConfigError("rber_fresh must be a probability")
        if self.wear_scale <= 0:
            raise ConfigError("wear_scale must be positive")

    def rber_at_wear(self, erase_count: int) -> float:
        """Raw bit error rate after ``erase_count`` program/erase cycles."""
        exponent = erase_count / self.wear_scale
        if exponent > 700:  # exp() would overflow; already at the cap
            return 0.5
        return min(0.5, self.rber_fresh * math.exp(exponent))

    def expected_bit_errors(self, erase_count: int) -> float:
        """Mean raw bit errors per codeword at the given wear."""
        return self.rber_at_wear(erase_count) * CODEWORD_BYTES * 8


@dataclass
class ReadOutcome:
    """What the ECC engine reported for one page read."""

    corrected_bits: int
    retries: int
    uncorrectable: bool

    @property
    def extra_latency_us(self) -> float:
        return 0.0  # filled by the engine; kept for interface symmetry


class EccEngine:
    """Samples per-read bit errors and applies the correction budget."""

    def __init__(self, config: EccConfig = EccConfig(), rng: Optional[random.Random] = None) -> None:
        self.config = config
        self._rng = rng if rng is not None else random.Random(0xECC)
        self.reads = 0
        self.corrected_total = 0
        self.retry_total = 0
        self.uncorrectable_total = 0

    def _sample_errors(self, erase_count: int) -> int:
        """Poisson-sampled raw bit errors in one codeword."""
        mean = self.config.expected_bit_errors(erase_count)
        if mean <= 0:
            return 0
        # Knuth's method is fine: means are small (<100) by construction.
        if mean > 50:
            # Gaussian approximation for heavily worn blocks.
            return max(0, int(self._rng.gauss(mean, math.sqrt(mean)) + 0.5))
        threshold = math.exp(-mean)
        count, product = 0, self._rng.random()
        while product > threshold:
            count += 1
            product *= self._rng.random()
        return count

    def read_page(self, erase_count: int) -> Tuple[ReadOutcome, float]:
        """One page read at the given block wear.

        Returns the outcome and the extra latency (retry passes) the
        firmware spent on it.
        """
        self.reads += 1
        retries = 0
        errors = self._sample_errors(erase_count)
        while errors > self.config.correctable_bits:
            if retries >= self.config.max_retries:
                self.uncorrectable_total += 1
                return (
                    ReadOutcome(corrected_bits=0, retries=retries,
                                uncorrectable=True),
                    retries * self.config.retry_latency_us,
                )
            retries += 1
            self.retry_total += 1
            # A retry shifts read reference voltages; model it as a fresh
            # draw with a modestly reduced error rate.
            errors = max(0, self._sample_errors(erase_count) - retries)
        self.corrected_total += errors
        return (
            ReadOutcome(corrected_bits=errors, retries=retries,
                        uncorrectable=False),
            retries * self.config.retry_latency_us,
        )


class BadBlockManager:
    """The firmware's bad-block table for one chip.

    Factory-marked bad blocks are retired at attach; grown bad blocks
    (uncorrectable reads, failed erases) are retired at runtime.  Retired
    blocks never return to the free pool.
    """

    def __init__(
        self,
        chip: FlashChip,
        factory_bad_ratio: float = 0.002,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 <= factory_bad_ratio < 0.5:
            raise ConfigError("factory_bad_ratio must be in [0, 0.5)")
        self.chip = chip
        self._bad: Set[int] = set()
        rng = rng if rng is not None else random.Random(0xBAD)
        for block in chip.blocks:
            if rng.random() < factory_bad_ratio:
                self._retire_silently(block.block_id)
        self.factory_bad = len(self._bad)
        self.grown_bad = 0

    def _retire_silently(self, block_id: int) -> None:
        try:
            self.chip.take_specific_block(block_id)
        except FlashError:
            raise FlashError(
                f"cannot retire block {block_id}: not in the free pool"
            )
        self._bad.add(block_id)

    def is_bad(self, block_id: int) -> bool:
        return block_id in self._bad

    @property
    def bad_count(self) -> int:
        return len(self._bad)

    def retire(self, block: Block) -> None:
        """Retire a grown-bad block (after migrating any live data).

        The block must be empty (erased or fully migrated+erased); the
        caller is responsible for the migration, exactly like GC.
        """
        if block.block_id in self._bad:
            raise FlashError(f"block {block.block_id} is already retired")
        if block.valid_count > 0:
            raise FlashError(
                f"block {block.block_id} still holds live data; migrate first"
            )
        self._bad.add(block.block_id)
        self.grown_bad += 1

    def usable_blocks(self) -> List[Block]:
        return [b for b in self.chip.blocks if b.block_id not in self._bad]

    def remaining_life_fraction(self, endurance: int = 30_000) -> float:
        """Crude health metric: unused endurance over usable blocks."""
        usable = self.usable_blocks()
        if not usable:
            return 0.0
        spent = sum(b.erase_count for b in usable) / (len(usable) * endurance)
        return max(0.0, 1.0 - spent)
