"""Device timing profiles.

The paper's sensitivity study (§4.5.3, Figures 19-20) compares three
devices: an Intel Optane SSD (fastest), an Intel DC NAND SSD, and the
programmable open-channel SSD of the testbed (P-SSD, slowest).  The values
below are representative datasheet-scale latencies; the experiments depend
on their *ordering and ratios*, not the exact microsecond values.
"""

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigError


@dataclass(frozen=True)
class DeviceProfile:
    """Operation latencies (microseconds) for one device class."""

    name: str
    read_us: float
    program_us: float
    erase_us: float
    #: Channel bus transfer cost per KB moved (both directions).
    transfer_us_per_kb: float = 0.025

    def __post_init__(self) -> None:
        for field_name in ("read_us", "program_us", "erase_us", "transfer_us_per_kb"):
            value = getattr(self, field_name)
            if value < 0:
                raise ConfigError(f"{field_name} must be >= 0, got {value!r}")

    def read_latency(self, size_kb: float) -> float:
        """Array read + bus transfer for ``size_kb`` of data."""
        return self.read_us + size_kb * self.transfer_us_per_kb

    def program_latency(self, size_kb: float) -> float:
        """Bus transfer + array program for ``size_kb`` of data."""
        return self.program_us + size_kb * self.transfer_us_per_kb


#: Intel Optane 900P class device: near-DRAM latency, no meaningful
#: read/program asymmetry.  (Emulated as very fast flash so the GC machinery
#: still exercises the same code path.)
OPTANE = DeviceProfile(name="optane", read_us=10.0, program_us=12.0, erase_us=200.0)

#: Intel DC NAND SSD class device.
INTEL_DC = DeviceProfile(
    name="intel-dc", read_us=80.0, program_us=300.0, erase_us=1_500.0
)

#: Open-channel programmable SSD of the testbed (LightNVM class): the
#: slowest of the three, with multi-millisecond erases.
PSSD = DeviceProfile(name="pssd", read_us=120.0, program_us=800.0, erase_us=5_000.0)

DEVICE_PROFILES: Dict[str, DeviceProfile] = {
    profile.name: profile for profile in (OPTANE, INTEL_DC, PSSD)
}


def profile_by_name(name: str) -> DeviceProfile:
    """Look up a built-in profile; raises ``ConfigError`` for unknown names."""
    try:
        return DEVICE_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(DEVICE_PROFILES))
        raise ConfigError(f"unknown device profile {name!r} (known: {known})") from None
