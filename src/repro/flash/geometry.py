"""Flash geometry: the static shape of an SSD.

The paper's SSDs (Figure 2) are organised as channels shared by packages of
chips; each chip holds blocks of pages.  We fold packages into the chip
count (a package is a wiring detail, not a behavioural one) and keep the
four levels that matter for performance: channel, chip, block, page.
"""

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class FlashGeometry:
    """Immutable description of an SSD's physical layout.

    The defaults describe the scaled-down device used throughout the
    experiments; scaling capacity down (while keeping ratios) preserves GC
    and wear dynamics, which depend on free-space *fractions* and
    erase-count *ratios*, not absolute bytes.
    """

    channels: int = 8
    chips_per_channel: int = 4
    blocks_per_chip: int = 256
    pages_per_block: int = 64
    page_size_kb: int = 4

    def __post_init__(self) -> None:
        for field_name in (
            "channels",
            "chips_per_channel",
            "blocks_per_chip",
            "pages_per_block",
            "page_size_kb",
        ):
            value = getattr(self, field_name)
            if not isinstance(value, int) or value <= 0:
                raise ConfigError(f"{field_name} must be a positive int, got {value!r}")

    @property
    def total_chips(self) -> int:
        return self.channels * self.chips_per_channel

    @property
    def total_blocks(self) -> int:
        return self.total_chips * self.blocks_per_chip

    @property
    def pages_per_chip(self) -> int:
        return self.blocks_per_chip * self.pages_per_block

    @property
    def total_pages(self) -> int:
        return self.total_chips * self.pages_per_chip

    @property
    def capacity_kb(self) -> int:
        return self.total_pages * self.page_size_kb

    @property
    def capacity_gb(self) -> float:
        return self.capacity_kb / (1024.0 * 1024.0)

    def chip_of(self, channel: int, chip_in_channel: int) -> int:
        """Flatten (channel, chip-in-channel) to a global chip index."""
        if not 0 <= channel < self.channels:
            raise ConfigError(f"channel {channel} out of range [0,{self.channels})")
        if not 0 <= chip_in_channel < self.chips_per_channel:
            raise ConfigError(
                f"chip {chip_in_channel} out of range [0,{self.chips_per_channel})"
            )
        return channel * self.chips_per_channel + chip_in_channel

    def channel_of_chip(self, chip: int) -> int:
        """Which channel serves a given global chip index."""
        if not 0 <= chip < self.total_chips:
            raise ConfigError(f"chip {chip} out of range [0,{self.total_chips})")
        return chip // self.chips_per_channel
