"""Flash SSD substrate.

Models the programmable SSDs of the paper's testbed: a hierarchy of
channels -> chips -> blocks -> pages with realistic operation timing,
out-of-place writes through a page-mapped FTL, greedy threshold garbage
collection, and per-block erase-count (wear) accounting.

This is the Python SSD emulator the paper itself uses for its device
sensitivity study (§4.5.3), extended to drive *all* experiments.
"""

from repro.flash.block import Block, PageState
from repro.flash.channel import Channel
from repro.flash.chip import FlashChip
from repro.flash.ftl import PageMappedFtl
from repro.flash.firmware import BadBlockManager, EccConfig, EccEngine
from repro.flash.gc import GcResult, GreedyGcPolicy, WearAwareGcPolicy
from repro.flash.scrubber import Scrubber
from repro.flash.geometry import FlashGeometry
from repro.flash.ssd import Ssd
from repro.flash.timing import (
    DEVICE_PROFILES,
    INTEL_DC,
    OPTANE,
    PSSD,
    DeviceProfile,
)
from repro.flash.wear import WearTracker

__all__ = [
    "FlashGeometry",
    "DeviceProfile",
    "DEVICE_PROFILES",
    "OPTANE",
    "INTEL_DC",
    "PSSD",
    "PageState",
    "Block",
    "FlashChip",
    "Channel",
    "PageMappedFtl",
    "GreedyGcPolicy",
    "WearAwareGcPolicy",
    "GcResult",
    "WearTracker",
    "Ssd",
    "EccConfig",
    "EccEngine",
    "BadBlockManager",
    "Scrubber",
]
