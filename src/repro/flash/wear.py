"""Wear accounting.

The wear of an SSD is "the average erase count of all the blocks to date"
(§3.6, footnote 2).  :class:`WearTracker` aggregates block erase counts at
chip, SSD, server, and rack granularity and computes the imbalance metric
λ = φ_max / φ_avg that the paper's two-level wear leveling keeps below 1+γ.
"""

from typing import List, Sequence

from repro.flash.chip import FlashChip


class WearTracker:
    """Read-only wear statistics over a set of chips."""

    def __init__(self, chips: Sequence[FlashChip]) -> None:
        if not chips:
            raise ValueError("WearTracker needs at least one chip")
        self.chips = list(chips)

    def average_erase_count(self) -> float:
        """φ for this device: mean erase count over all blocks."""
        total = 0
        blocks = 0
        for chip in self.chips:
            for block in chip.blocks:
                total += block.erase_count
                blocks += 1
        return total / blocks if blocks else 0.0

    def max_erase_count(self) -> int:
        return max(
            (block.erase_count for chip in self.chips for block in chip.blocks),
            default=0,
        )

    def min_erase_count(self) -> int:
        return min(
            (block.erase_count for chip in self.chips for block in chip.blocks),
            default=0,
        )

    def per_chip_average(self) -> List[float]:
        return [chip.average_erase_count for chip in self.chips]


def wear_imbalance(wears: Sequence[float]) -> float:
    """λ = φ_max / φ_avg across a set of devices.

    Returns 1.0 when all wears are zero (a fresh fleet is balanced).
    """
    if not wears:
        raise ValueError("need at least one wear value")
    avg = sum(wears) / len(wears)
    if avg == 0.0:
        return 1.0
    return max(wears) / avg


def wear_variance(wears: Sequence[float]) -> float:
    """Population variance of device wear (Figure 23's balance metric)."""
    if not wears:
        raise ValueError("need at least one wear value")
    avg = sum(wears) / len(wears)
    return sum((w - avg) ** 2 for w in wears) / len(wears)
