"""Page-mapped flash translation layer.

Each vSSD runs its own FTL over the chips it owns (§3.3: "each vSSD has its
own address mapping table ... and local wear leveling").  The FTL performs
out-of-place writes, invalidating the previous physical page, and exposes
the free-block accounting that drives the paper's soft/hard GC thresholds.

The FTL is *pure state*: it decides placement and updates mappings, while
the timed channel operations are issued by the owning vSSD.  This split
keeps the state machine testable without a simulator.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import AddressError, FlashError, OutOfSpaceError
from repro.flash.block import Block
from repro.flash.chip import FlashChip


@dataclass(frozen=True)
class PhysicalAddr:
    """A physical flash location: chip object + block + page."""

    chip: FlashChip
    block_id: int
    page: int

    def key(self) -> Tuple[int, int, int]:
        return (self.chip.chip_id, self.block_id, self.page)


@dataclass
class BorrowedBlock:
    """A free block loaned by a collocated vSSD (channel-group borrowing)."""

    chip: FlashChip
    block_id: int
    lender: "PageMappedFtl"


class PageMappedFtl:
    """Out-of-place, page-granularity FTL over a set of owned chips."""

    def __init__(
        self,
        name: str,
        chips: List[FlashChip],
        pages_per_block: int,
        overprovision: float = 0.25,
    ) -> None:
        if not chips:
            raise FlashError("FTL needs at least one chip")
        if not 0.0 < overprovision < 1.0:
            raise FlashError(f"overprovision must be in (0,1), got {overprovision}")
        self.name = name
        self.chips = list(chips)
        self.pages_per_block = pages_per_block
        self.overprovision = overprovision

        total_pages = sum(c.blocks_per_chip for c in chips) * pages_per_block
        #: Host-visible capacity in pages.
        self.logical_pages = int(total_pages * (1.0 - overprovision))
        self.total_physical_pages = total_pages
        self.total_blocks = sum(c.blocks_per_chip for c in chips)

        #: lpn -> PhysicalAddr for every written logical page.
        self._map: Dict[int, PhysicalAddr] = {}
        #: (chip_id, block_id, page) -> lpn, for GC migrations.
        self._rmap: Dict[Tuple[int, int, int], int] = {}
        #: Per-chip active (write) block; allocated lazily.
        self._active: Dict[int, Optional[Block]] = {c.chip_id: None for c in chips}
        self._chips_by_id = {c.chip_id: c for c in chips}
        self._next_chip = 0

        #: Blocks currently borrowed from collocated vSSDs, unused ones first.
        self._borrowed_free: List[BorrowedBlock] = []
        #: Borrowed blocks now holding our data (returned after GC erases them).
        self._borrowed_in_use: Dict[Tuple[int, int], BorrowedBlock] = {}

        # Statistics for write-amplification reporting.
        self.host_writes = 0
        self.gc_writes = 0
        self.gc_erases = 0

    # ------------------------------------------------------------------ reads

    def lookup(self, lpn: int) -> Optional[PhysicalAddr]:
        """Physical location of a logical page, or ``None`` if unwritten."""
        self._check_lpn(lpn)
        return self._map.get(lpn)

    # ----------------------------------------------------------------- writes

    def place_write(self, lpn: int) -> PhysicalAddr:
        """Choose a physical page for ``lpn``; updates mapping state.

        The previous location (if any) is invalidated -- the out-of-place
        write discipline that makes GC necessary in the first place.
        """
        self._check_lpn(lpn)
        old = self._map.get(lpn)
        addr = self._program_somewhere(lpn)
        if old is not None:
            old.chip.blocks[old.block_id].invalidate(old.page)
            self._rmap.pop(old.key(), None)
        self._map[lpn] = addr
        self._rmap[addr.key()] = lpn
        self.host_writes += 1
        return addr

    def _program_somewhere(self, lpn: int) -> PhysicalAddr:
        """Program one page on the next chip in the stripe order."""
        n = len(self.chips)
        for offset in range(n):
            chip = self.chips[(self._next_chip + offset) % n]
            try:
                addr = self._program_on_chip(chip)
            except OutOfSpaceError:
                continue
            self._next_chip = (self._next_chip + offset + 1) % n
            return addr
        # Owned chips exhausted; spill into borrowed blocks if any.
        if self._borrowed_free:
            return self._program_on_borrowed()
        raise OutOfSpaceError(
            f"FTL {self.name}: no free pages on any owned chip "
            f"(free blocks={self.free_blocks_total()})"
        )

    def _program_on_chip(self, chip: FlashChip) -> PhysicalAddr:
        active = self._active[chip.chip_id]
        if active is None or active.is_full:
            active = chip.allocate_block()  # raises OutOfSpaceError when empty
            self._active[chip.chip_id] = active
        page = active.program_next()
        return PhysicalAddr(chip, active.block_id, page)

    def _program_on_borrowed(self) -> PhysicalAddr:
        borrowed = self._borrowed_free[0]
        block = borrowed.chip.blocks[borrowed.block_id]
        page = block.program_next()
        if block.is_full:
            self._borrowed_free.pop(0)
        self._borrowed_in_use[(borrowed.chip.chip_id, borrowed.block_id)] = borrowed
        return PhysicalAddr(borrowed.chip, borrowed.block_id, page)

    def trim(self, lpn: int) -> None:
        """Discard a logical page (invalidate without rewriting)."""
        self._check_lpn(lpn)
        old = self._map.pop(lpn, None)
        if old is not None:
            old.chip.blocks[old.block_id].invalidate(old.page)
            self._rmap.pop(old.key(), None)

    # ------------------------------------------------------------ free space

    def free_blocks_total(self) -> int:
        """Free blocks across owned chips (borrowed blocks excluded)."""
        return sum(chip.free_block_count for chip in self.chips)

    def free_block_ratio(self) -> float:
        """Fraction of owned blocks that are erased and ready.

        This is the quantity compared against the paper's
        ``soft_threshold`` (35%) and ``gc_threshold`` (25%).
        """
        return self.free_blocks_total() / self.total_blocks

    # ------------------------------------------------------------------- GC

    def select_victim(self, scorer=None) -> Optional[PhysicalAddr]:
        """Victim across owned chips; highest ``scorer(block)`` wins.

        The default scorer is greedy (most invalid pages).  Wear-aware
        policies pass their own scorer to fold erase counts in.  Returns
        the victim as a ``PhysicalAddr`` with ``page=0`` (the block is what
        matters), or ``None`` when no block has stale pages.  Active write
        blocks are exempt.
        """
        if scorer is None:
            scorer = lambda block: float(block.invalid_count)  # noqa: E731
        best: Optional[Tuple[float, FlashChip, Block]] = None
        for chip in self.chips:
            active = self._active[chip.chip_id]
            for block in chip.victim_candidates():
                if active is not None and block.block_id == active.block_id:
                    continue
                score = scorer(block)
                if best is None or score > best[0]:
                    best = (score, chip, block)
        if best is None:
            return None
        _, chip, block = best
        return PhysicalAddr(chip, block.block_id, 0)

    def victim_valid_lpns(self, victim: PhysicalAddr) -> List[int]:
        """Logical pages that must be migrated before erasing the victim."""
        block = victim.chip.blocks[victim.block_id]
        lpns = []
        for page in block.valid_pages():
            key = (victim.chip.chip_id, victim.block_id, page)
            lpn = self._rmap.get(key)
            if lpn is None:
                raise FlashError(
                    f"FTL {self.name}: valid page {key} has no reverse mapping"
                )
            lpns.append(lpn)
        return lpns

    def migrate_page(self, lpn: int) -> Tuple[PhysicalAddr, PhysicalAddr]:
        """Move one valid page out of a GC victim; returns (old, new)."""
        old = self._map.get(lpn)
        if old is None:
            raise AddressError(f"lpn {lpn} is not mapped")
        new = self._program_somewhere(lpn)
        old.chip.blocks[old.block_id].invalidate(old.page)
        self._rmap.pop(old.key(), None)
        self._map[lpn] = new
        self._rmap[new.key()] = lpn
        self.gc_writes += 1
        return old, new

    def commit_erase(self, victim: PhysicalAddr) -> None:
        """Erase bookkeeping for a fully migrated victim block."""
        block = victim.chip.blocks[victim.block_id]
        block.erase()
        self.gc_erases += 1
        borrowed = self._borrowed_in_use.pop(
            (victim.chip.chip_id, victim.block_id), None
        )
        if borrowed is not None:
            # Borrowed blocks are erased (the paper erases them "for
            # security") and handed back to the lender's free pool.
            borrowed.lender._receive_returned_block(borrowed)  # noqa: SLF001
        else:
            victim.chip.release_block(block)

    # ------------------------------------------------------ block borrowing

    def lend_free_blocks(self, count: int, borrower: "PageMappedFtl") -> int:
        """Loan up to ``count`` free blocks to a collocated vSSD's FTL.

        Returns how many blocks were actually transferred.  Lending never
        drains the pool completely: one free block per chip is retained so
        the lender can still allocate an active block.
        """
        granted = 0
        for chip in self.chips:
            while granted < count and chip.free_block_count > 1:
                block = chip.allocate_block()
                borrower._borrowed_free.append(  # noqa: SLF001
                    BorrowedBlock(chip=chip, block_id=block.block_id, lender=self)
                )
                granted += 1
            if granted >= count:
                break
        return granted

    def _receive_returned_block(self, borrowed: BorrowedBlock) -> None:
        borrowed.chip.release_block(borrowed.chip.blocks[borrowed.block_id])

    @property
    def borrowed_block_count(self) -> int:
        return len(self._borrowed_free) + len(self._borrowed_in_use)

    # ------------------------------------------------------------ statistics

    def write_amplification(self) -> float:
        """(host + GC writes) / host writes; 1.0 when GC never ran."""
        if self.host_writes == 0:
            return 1.0
        return (self.host_writes + self.gc_writes) / self.host_writes

    def mapped_page_count(self) -> int:
        return len(self._map)

    def utilization(self) -> float:
        """Mapped logical pages as a fraction of logical capacity."""
        return len(self._map) / self.logical_pages if self.logical_pages else 0.0

    def check_invariants(self) -> None:
        """Verify map/rmap agreement and valid-page accounting (test hook)."""
        if len(self._map) != len(self._rmap):
            raise FlashError(
                f"map/rmap size mismatch: {len(self._map)} vs {len(self._rmap)}"
            )
        for lpn, addr in self._map.items():
            if self._rmap.get(addr.key()) != lpn:
                raise FlashError(f"rmap disagrees for lpn {lpn} at {addr.key()}")
        valid_total = sum(
            block.valid_count for chip in self.chips for block in chip.blocks
        )
        owned_mapped = sum(
            1 for addr in self._map.values() if addr.chip.chip_id in self._chips_by_id
            and addr.chip is self._chips_by_id[addr.chip.chip_id]
        )
        if valid_total < owned_mapped - len(self._borrowed_in_use) * self.pages_per_block:
            raise FlashError("valid-page accounting drifted below mapped count")

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise AddressError(
                f"lpn {lpn} out of range [0,{self.logical_pages}) for {self.name}"
            )
