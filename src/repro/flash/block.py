"""Flash block and page state machine.

Pages in a block must be programmed sequentially, can only transition
FREE -> VALID -> INVALID, and return to FREE only through a whole-block
erase.  Every erase increments the block's erase count -- the quantity the
paper's wear-leveling machinery balances.
"""

import enum
from typing import List

from repro.errors import FlashError


class PageState(enum.Enum):
    FREE = "free"
    VALID = "valid"
    INVALID = "invalid"


class Block:
    """One erase block: a sequentially-programmed array of pages."""

    __slots__ = ("block_id", "pages_per_block", "_states", "_write_ptr",
                 "valid_count", "erase_count")

    def __init__(self, block_id: int, pages_per_block: int) -> None:
        if pages_per_block <= 0:
            raise FlashError(f"pages_per_block must be positive, got {pages_per_block}")
        self.block_id = block_id
        self.pages_per_block = pages_per_block
        self._states: List[PageState] = [PageState.FREE] * pages_per_block
        self._write_ptr = 0
        self.valid_count = 0
        self.erase_count = 0

    @property
    def is_full(self) -> bool:
        """True once every page has been programmed since the last erase."""
        return self._write_ptr >= self.pages_per_block

    @property
    def is_empty(self) -> bool:
        """True when the block is fully erased and unprogrammed."""
        return self._write_ptr == 0

    @property
    def invalid_count(self) -> int:
        return self._write_ptr - self.valid_count

    @property
    def free_pages(self) -> int:
        return self.pages_per_block - self._write_ptr

    def page_state(self, page: int) -> PageState:
        self._check_page(page)
        return self._states[page]

    def program_next(self) -> int:
        """Program the next sequential page; returns its index."""
        if self.is_full:
            raise FlashError(f"block {self.block_id} is full")
        page = self._write_ptr
        self._states[page] = PageState.VALID
        self._write_ptr += 1
        self.valid_count += 1
        return page

    def invalidate(self, page: int) -> None:
        """Mark a previously valid page as stale (out-of-place overwrite)."""
        self._check_page(page)
        if self._states[page] is not PageState.VALID:
            raise FlashError(
                f"block {self.block_id} page {page} is {self._states[page].value}, "
                "cannot invalidate"
            )
        self._states[page] = PageState.INVALID
        self.valid_count -= 1

    def erase(self) -> None:
        """Erase the whole block, freeing every page and bumping wear."""
        if self.valid_count > 0:
            raise FlashError(
                f"block {self.block_id} still holds {self.valid_count} valid pages; "
                "migrate them before erasing"
            )
        self._states = [PageState.FREE] * self.pages_per_block
        self._write_ptr = 0
        self.erase_count += 1

    def valid_pages(self) -> List[int]:
        """Indexes of the pages currently holding live data."""
        return [
            page
            for page in range(self._write_ptr)
            if self._states[page] is PageState.VALID
        ]

    def _check_page(self, page: int) -> None:
        if not 0 <= page < self.pages_per_block:
            raise FlashError(
                f"page {page} out of range [0,{self.pages_per_block}) "
                f"in block {self.block_id}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Block(id={self.block_id}, valid={self.valid_count}, "
            f"invalid={self.invalid_count}, free={self.free_pages}, "
            f"erases={self.erase_count})"
        )
