"""The storage server: Algorithm 2's packet-processing workflow.

Reads enter the local I/O scheduler (coordinated or not) and dispatch to
the vSSD's flash channels; writes land in the DRAM cache and complete
immediately (flushed in the background).  The server feeds the
return-latency predictor from the INT field of every incoming packet and
exposes per-request hooks the rack uses to time responses.
"""

from typing import Callable, Dict, Generator, Optional

from repro.errors import ConfigError
from repro.net.packet import OpType, Packet
from repro.server.idle import IdlePredictor
from repro.server.iosched import IoRequest
from repro.server.predictor import ReturnLatencyPredictor
from repro.server.write_cache import WriteCache
from repro.sim import Event, Simulator
from repro.vssd.vssd import VSsd


class StorageServer:
    """One storage server hosting vSSDs behind an I/O scheduler."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        ip: str,
        scheduler,
        write_cache: Optional[WriteCache] = None,
        predictor: Optional[ReturnLatencyPredictor] = None,
        max_inflight: int = 8,
        per_vssd_inflight: Optional[int] = None,
        respond_fn: Optional[Callable[[Packet, "StorageServer"], None]] = None,
        software_redirect_fn: Optional[Callable[[Packet, "StorageServer"], bool]] = None,
    ) -> None:
        if max_inflight < 1:
            raise ConfigError(f"max_inflight must be >= 1, got {max_inflight}")
        if per_vssd_inflight is not None and per_vssd_inflight < 1:
            raise ConfigError("per_vssd_inflight must be >= 1 when given")
        self.sim = sim
        self.name = name
        self.ip = ip
        self.scheduler = scheduler
        self.write_cache = write_cache if write_cache is not None else WriteCache(sim)
        self.predictor = predictor if predictor is not None else ReturnLatencyPredictor()
        self.max_inflight = max_inflight
        self.respond_fn = respond_fn
        #: RackBlox (Software): a hook that forwards a read to the replica
        #: server when the local vSSD is collecting.  Returns True when the
        #: request was taken over.
        self.software_redirect_fn = software_redirect_fn

        self.per_vssd_inflight = per_vssd_inflight
        #: Cleared when the failure machinery crashes this server.
        self.alive = True
        self._vssds: Dict[int, VSsd] = {}
        self.idle_predictors: Dict[int, IdlePredictor] = {}
        self._inflight = 0
        #: Per-vSSD device queue depth; keeping it near the vSSD's channel
        #: count keeps the backlog *in the scheduler* (where policy applies),
        #: the way Kyber limits in-device tokens on real hardware.
        self._vssd_inflight: Dict[int, int] = {}
        self._vssd_limit: Dict[int, int] = {}
        #: vSSDs currently at their device-queue limit.  The dispatch loop
        #: passes no eligibility predicate at all while this is empty, so
        #: the scheduler's selection scans skip the per-candidate check in
        #: the common uncongested case.
        self._vssd_blocked: set = set()
        self._work: Optional[Event] = None
        self.reads_received = 0
        self.writes_received = 0
        self.reads_completed = 0
        self.flushes_completed = 0
        self.software_redirects = 0
        #: Reads whose flash service overlapped a GC pass on their vSSD.
        self.gc_blocked_reads = 0
        # Route cache flushes through this server's scheduler, so
        # background writes contend with reads like any other request.
        self.write_cache.submit_fn = self._submit_flush
        sim.spawn(self._dispatch_loop())

    # ----------------------------------------------------------- topology

    def host_vssd(self, vssd: VSsd) -> None:
        """Attach a vSSD to this server (with its idle predictor and
        device-queue limit derived from its channel span)."""
        if vssd.vssd_id in self._vssds:
            raise ConfigError(f"vSSD {vssd.vssd_id} already hosted on {self.name}")
        self._vssds[vssd.vssd_id] = vssd
        self.idle_predictors[vssd.vssd_id] = IdlePredictor()
        self._vssd_inflight[vssd.vssd_id] = 0
        if self.per_vssd_inflight is not None:
            limit = self.per_vssd_inflight
        else:
            geometry = vssd.ssd.geometry
            limit = len(
                {geometry.channel_of_chip(chip.chip_id) for chip in vssd.ftl.chips}
            )
        self._vssd_limit[vssd.vssd_id] = max(1, limit)

    def vssd(self, vssd_id: int) -> VSsd:
        """The hosted vSSD with this id (ConfigError if not hosted)."""
        try:
            return self._vssds[vssd_id]
        except KeyError:
            raise ConfigError(f"vSSD {vssd_id} is not hosted on {self.name}") from None

    @property
    def vssds(self):
        """All vSSDs hosted on this server."""
        return list(self._vssds.values())

    # --------------------------------------------------------- packet entry

    def receive_packet(self, pkt: Packet) -> None:
        """Entry point from the rack: Algorithm 2 dispatch."""
        if pkt.op is OpType.WRITE:
            self.writes_received += 1
            self.sim.spawn(self._handle_write(pkt))
        elif pkt.op is OpType.READ:
            self.reads_received += 1
            self._handle_read(pkt)
        else:
            raise ConfigError(
                f"server {self.name} received unexpected op {pkt.op.name}"
            )

    def _handle_write(self, pkt: Packet) -> Generator:
        vssd = self.vssd(pkt.vssd_id)
        self.predictor.observe(pkt.vssd_id, "write", pkt.lat)
        self.idle_predictors[pkt.vssd_id].record_request(self.sim.now)
        lpn = pkt.payload.get("lpn", 0)
        arrived = self.sim.now
        # Line 2-4: cache the write (blocking only when the cache is full);
        # the write is complete once the DRAM copy exists.
        yield from self.write_cache.admit(vssd, lpn)
        trace = pkt.payload.get("trace")
        if trace is not None:
            trace.add_span(
                "server.write_cache", arrived, self.sim.now,
                server=self.name, vssd=pkt.vssd_id,
                dirty_pages=self.write_cache.dirty_pages,
            )
        response = pkt.make_response(size_kb=0.1)
        response.payload["storage_us"] = self.sim.now - arrived
        self._respond(response)

    def _handle_read(self, pkt: Packet) -> None:
        vssd = self.vssd(pkt.vssd_id)
        self.predictor.observe(pkt.vssd_id, "read", pkt.lat)
        self.idle_predictors[pkt.vssd_id].record_request(self.sim.now)
        if (
            self.software_redirect_fn is not None
            and vssd.gc_active
            and self.software_redirect_fn(pkt, self)
        ):
            # RackBlox (Software): the replica server takes over; the extra
            # server-to-server hop was charged by the redirect hook.
            self.software_redirects += 1
            return
        request = IoRequest(
            kind="read",
            vssd_id=pkt.vssd_id,
            lpn=pkt.payload.get("lpn", 0),
            arrival_time=self.sim.now,
            net_time=pkt.lat,
            predict_time=self.predictor.predict(pkt.vssd_id, "read"),
            context=pkt,
        )
        self.scheduler.push(request, self.sim.now)
        self._kick()

    def _submit_flush(self, vssd: VSsd, lpn: int) -> Event:
        """Queue one cache flush as a write request; returns its completion."""
        done = Event(self.sim)
        request = IoRequest(
            kind="write",
            vssd_id=vssd.vssd_id,
            lpn=lpn,
            arrival_time=self.sim.now,
            net_time=0.0,
            predict_time=self.predictor.predict(vssd.vssd_id, "write"),
            context=done,
        )
        self.scheduler.push(request, self.sim.now)
        self._kick()
        return done

    # ------------------------------------------------------------- dispatch

    def _kick(self) -> None:
        if self._work is not None and not self._work.triggered:
            self._work.succeed()

    def _dispatchable(self, request: IoRequest) -> bool:
        return request.vssd_id not in self._vssd_blocked

    def _vssd_acquire(self, vssd_id: int) -> None:
        count = self._vssd_inflight[vssd_id] + 1
        self._vssd_inflight[vssd_id] = count
        if count >= self._vssd_limit[vssd_id]:
            self._vssd_blocked.add(vssd_id)

    def _vssd_release(self, vssd_id: int) -> None:
        self._vssd_inflight[vssd_id] -= 1
        self._vssd_blocked.discard(vssd_id)

    def _dispatch_loop(self) -> Generator:
        while True:
            dispatched = False
            while self._inflight < self.max_inflight:
                eligible = self._dispatchable if self._vssd_blocked else None
                request = self.scheduler.pop(self.sim.now, eligible)
                if request is None:
                    break
                self._inflight += 1
                self._vssd_acquire(request.vssd_id)
                dispatched = True
                self.sim.spawn(self._service(request))
            if not dispatched or self._inflight >= self.max_inflight:
                self._work = Event(self.sim)
                yield self._work
                self._work = None

    def _service(self, request: IoRequest) -> Generator:
        vssd = self.vssd(request.vssd_id)
        trace = None
        context = request.context
        if isinstance(context, Packet):
            trace = context.payload.get("trace")
            if trace is not None:
                trace.add_span(
                    "server.queue", request.arrival_time, self.sim.now,
                    server=self.name, vssd=request.vssd_id,
                    queue_depth=len(self.scheduler),
                )
        service_start = self.sim.now
        gc_seen = vssd.gc_active
        try:
            if request.kind == "read":
                yield from vssd.read(request.lpn)
            else:
                yield from vssd.write(request.lpn)
        finally:
            self._inflight -= 1
            self._vssd_release(request.vssd_id)
            self._kick()
        gc_seen = gc_seen or vssd.gc_active
        if request.kind == "read" and gc_seen:
            self.gc_blocked_reads += 1
        if trace is not None:
            trace.add_span(
                "storage.media", service_start, self.sim.now,
                server=self.name, vssd=request.vssd_id, gc=gc_seen,
            )
        latency = self.sim.now - request.arrival_time
        self.scheduler.record_completion(request.kind, latency, request=request)
        if request.kind == "read":
            self.reads_completed += 1
            pkt = request.context
            if isinstance(pkt, Packet):
                response = pkt.make_response(size_kb=4.0)
                response.payload["storage_us"] = latency
                self._respond(response)
        else:
            self.flushes_completed += 1
            done = request.context
            if isinstance(done, Event) and not done.triggered:
                done.succeed()

    def _respond(self, response: Packet) -> None:
        if self.respond_fn is not None:
            self.respond_fn(response, self)

    def queue_depth(self) -> int:
        """Requests waiting in the I/O scheduler (excludes in-flight)."""
        return len(self.scheduler)
