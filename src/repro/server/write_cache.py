"""The DRAM write cache (§3.5.1).

Writes are absorbed by the server's DRAM cache and "considered complete
when all replicas have a DRAM copy"; dirty pages are flushed to flash in
the background.  The cache is what keeps write tail latency low even while
GC runs -- unless it fills, at which point admission blocks until the
flusher frees a slot (the write-tail mechanism in Figure 9b).

Flushes are submitted through the server's I/O scheduler (``submit_fn``)
when one is wired up, so background writes compete with reads exactly as
in the real storage stack -- and benefit from coordinated scheduling and
coordinated GC like any other request.
"""

from collections import OrderedDict, deque
from typing import Callable, Deque, Generator, Optional, Tuple

from repro.errors import ConfigError
from repro.sim import Event, Simulator, Timeout
from repro.vssd.vssd import VSsd


class WriteCache:
    """A bounded dirty-page cache with a background flusher per server."""

    def __init__(
        self,
        sim: Simulator,
        capacity_pages: int = 1024,
        flush_watermark: float = 0.5,
        flush_parallelism: int = 4,
        submit_fn: Optional[Callable[[VSsd, int], Event]] = None,
    ) -> None:
        if capacity_pages <= 0:
            raise ConfigError(f"capacity must be positive, got {capacity_pages}")
        if not 0.0 <= flush_watermark < 1.0:
            raise ConfigError(f"watermark must be in [0,1), got {flush_watermark}")
        if flush_parallelism < 1:
            raise ConfigError("flush_parallelism must be >= 1")
        self.sim = sim
        self.capacity = capacity_pages
        self.flush_watermark = flush_watermark
        self.flush_parallelism = flush_parallelism
        #: When set, flushes go through the server's I/O scheduler instead
        #: of straight to the device.
        self.submit_fn = submit_fn
        #: Dirty entries in flush order: (vssd_id, lpn) -> vssd.  Duplicate
        #: writes to a hot page coalesce (write combining).
        self._dirty: "OrderedDict[Tuple[int, int], VSsd]" = OrderedDict()
        self._admission_waiters: Deque[Event] = deque()
        self._flush_kick: Optional[Event] = None
        self._outstanding = 0
        self.admissions = 0
        self.coalesced = 0
        self.flushes = 0
        self.full_stalls = 0
        sim.spawn(self._flusher())

    @property
    def dirty_pages(self) -> int:
        """Pages cached but not yet handed to the flusher."""
        return len(self._dirty)

    @property
    def occupancy(self) -> float:
        """Fill fraction including flushes still in flight."""
        return (len(self._dirty) + self._outstanding) / self.capacity

    def admit(self, vssd: VSsd, lpn: int) -> Generator:
        """Process: admit one write; blocks while the cache is full."""
        key = (vssd.vssd_id, lpn)
        if key in self._dirty:
            self._dirty.move_to_end(key)
            self.coalesced += 1
            self.admissions += 1
            return
        while len(self._dirty) + self._outstanding >= self.capacity:
            self.full_stalls += 1
            waiter = Event(self.sim)
            self._admission_waiters.append(waiter)
            yield waiter
        self._dirty[key] = vssd
        self.admissions += 1
        self._kick_flusher()

    def _kick_flusher(self) -> None:
        if self._flush_kick is not None and not self._flush_kick.triggered:
            self._flush_kick.succeed()

    def _flusher(self) -> Generator:
        """Background process: drain dirty pages, lazily below the
        watermark, aggressively above it, with bounded parallelism."""
        dwell_us = 200.0
        while True:
            if not self._dirty or self._outstanding >= self.flush_parallelism:
                self._flush_kick = Event(self.sim)
                yield self._flush_kick
                self._flush_kick = None
                continue
            if self.occupancy < self.flush_watermark:
                # Light pressure: batch lazily behind a dwell.
                yield Timeout(self.sim, dwell_us)
                if not self._dirty:
                    continue
            key, vssd = self._dirty.popitem(last=False)
            self._outstanding += 1
            self.sim.spawn(self._flush_one(vssd, key[1]))

    def _flush_one(self, vssd: VSsd, lpn: int) -> Generator:
        try:
            if self.submit_fn is not None:
                yield self.submit_fn(vssd, lpn)
            else:
                yield from vssd.write(lpn)
        finally:
            self._outstanding -= 1
            self.flushes += 1
            if self._admission_waiters:
                self._admission_waiters.popleft().succeed()
            self._kick_flusher()

    def flush_all(self) -> Generator:
        """Process: synchronously drain the whole cache (used in tests)."""
        while self._dirty:
            key, vssd = self._dirty.popitem(last=False)
            yield from vssd.write(key[1])
            self.flushes += 1
            if self._admission_waiters:
                self._admission_waiters.popleft().succeed()
