"""Periodic GC monitoring (Algorithm 2, ``trigger_gc``).

Every check interval the monitor inspects each hosted vSSD:

* free blocks below the **hard** ``gc_threshold`` -> a *regular* GC request
  (never denied; retried up to 3 times on lost acks, then executed anyway);
* below the **soft** threshold -> a *soft* request the switch may *delay*
  while the replica is collecting;
* otherwise, if the idle predictor forecasts a long-enough gap -> a
  *background* GC executed without waiting for approval.

Coordination is pluggable: :class:`LocalGcCoordinator` accepts everything
instantly (the uncoordinated baselines); the switch- and controller-based
coordinators live in :mod:`repro.cluster` where the network is wired up.
"""

from typing import Dict, Generator, List, Optional

from repro.errors import ConfigError
from repro.server.idle import IdlePredictor
from repro.sim import Simulator, Timeout
from repro.sim.core import MSEC
from repro.vssd.channel_group import ChannelGroup
from repro.vssd.vssd import VSsd

#: Default free-ratio the GC restores to once admitted (a little above the
#: soft threshold so back-to-back requests don't thrash).  Kept small so
#: each admitted GC is a short burst of erases -- firmware paces GC rather
#: than reclaiming in one long stall.
DEFAULT_RESTORE_MARGIN = 0.02
DEFAULT_RETRIES = 3


class LocalGcCoordinator:
    """No coordination: every request is accepted immediately (VDC-style)."""

    def request_gc(self, vssd: VSsd, kind: str) -> Generator:
        """Process: always grants immediately (no shared state)."""
        return "accept"
        yield  # pragma: no cover - makes this a generator function

    def notify_finish(self, vssd: VSsd) -> Generator:
        """Process: nothing to clear -- no shared state exists."""
        return None
        yield  # pragma: no cover

    def notify_background(self, vssd: VSsd) -> Generator:
        """Process: background GC needs no approval and no bookkeeping."""
        return None
        yield  # pragma: no cover


class GcMonitor:
    """Runs the periodic trigger_gc loop for one server's vSSDs."""

    def __init__(
        self,
        sim: Simulator,
        vssds: List[VSsd],
        coordinator,
        idle_predictors: Optional[Dict[int, IdlePredictor]] = None,
        check_interval_us: float = 20 * MSEC,
        retries: int = DEFAULT_RETRIES,
        restore_margin: float = DEFAULT_RESTORE_MARGIN,
    ) -> None:
        if check_interval_us <= 0:
            raise ConfigError("check interval must be positive")
        self.sim = sim
        self.vssds = list(vssds)
        self.coordinator = coordinator
        self.idle_predictors = idle_predictors if idle_predictors is not None else {}
        self.check_interval_us = check_interval_us
        self.retries = retries
        self.restore_margin = restore_margin
        self.requests_sent = {"soft": 0, "regular": 0, "bg": 0}
        self.delays_received = 0
        self.forced_after_retries = 0
        self._running = False

    def start(self) -> None:
        """Begin the periodic trigger_gc loop (idempotent)."""
        if self._running:
            return
        self._running = True
        self.sim.spawn(self._loop())

    def _loop(self) -> Generator:
        # Stagger the first check so a rack of monitors doesn't synchronise.
        yield Timeout(self.sim, self.check_interval_us * 0.5)
        while True:
            yield self.sim.spawn(self.check_all_once())
            yield Timeout(self.sim, self.check_interval_us)

    def check_all_once(self) -> Generator:
        """Process: one pass of trigger_gc over every hosted vSSD."""
        groups_seen = set()
        for vssd in self.vssds:
            group = vssd.channel_group
            if group is not None:
                if id(group) in groups_seen:
                    continue
                groups_seen.add(id(group))
                yield self.sim.spawn(self._check_group(group))
            else:
                yield self.sim.spawn(self._check_vssd(vssd))

    # -------------------------------------------------- hardware-isolated

    def _check_vssd(self, vssd: VSsd) -> Generator:
        if vssd.gc_active:
            return
        kind = vssd.gc_needed()
        if kind is None:
            predictor = self.idle_predictors.get(vssd.vssd_id)
            has_stale = vssd.ftl.select_victim() is not None
            if predictor is not None and predictor.should_background_gc() and has_stale:
                kind = "bg"
        if kind is None:
            return
        self.requests_sent[kind] += 1
        if kind == "bg":
            # Background GC needs no approval; the switch is merely told so
            # it can redirect reads meanwhile.
            yield self.sim.spawn(self.coordinator.notify_background(vssd))
            yield self.sim.spawn(self._run_gc(vssd))
            return
        verdict = yield self.sim.spawn(self._request_with_retries(vssd, kind))
        if verdict == "accept":
            yield self.sim.spawn(self._run_gc(vssd))
        else:
            self.delays_received += 1

    def _request_with_retries(self, vssd: VSsd, kind: str) -> Generator:
        attempts = self.retries if kind == "regular" else 1
        for _ in range(attempts):
            verdict = yield self.sim.spawn(self.coordinator.request_gc(vssd, kind))
            if verdict in ("accept", "delay"):
                return verdict
            # Lost ack (link/switch failure): back off briefly and retry.
            yield Timeout(self.sim, 1 * MSEC)
        if kind == "regular":
            # The paper: regular GC executes after exhausting retries.
            self.forced_after_retries += 1
            return "accept"
        return "delay"

    def _run_gc(self, vssd: VSsd) -> Generator:
        target = vssd.gc_policy.soft_threshold + self.restore_margin
        yield self.sim.spawn(vssd.gc_until(target))
        yield self.sim.spawn(self.coordinator.notify_finish(vssd))

    # -------------------------------------------------- software-isolated

    def _check_group(self, group: ChannelGroup) -> Generator:
        # Members that ran dry borrow blocks while the group-wide GC point
        # has not been reached (§3.5.2).
        group.rebalance_free_blocks()
        kind = group.needs_group_gc()
        if kind is None:
            return
        self.requests_sent[kind] += 1
        # One gc_op per member vSSD; a delay response from *any* member
        # delays the whole channel group.
        verdicts = []
        for member in group.members:
            verdict = yield self.sim.spawn(
                self._request_with_retries(member, kind)
            )
            verdicts.append(verdict)
        if all(v == "accept" for v in verdicts):
            target = group.members[0].gc_policy.soft_threshold + self.restore_margin
            yield self.sim.spawn(group.group_gc(target))
            for member in group.members:
                yield self.sim.spawn(self.coordinator.notify_finish(member))
        else:
            self.delays_received += 1
            # Roll back accepted members: their GC did not actually start.
            for member, verdict in zip(group.members, verdicts):
                if verdict == "accept":
                    yield self.sim.spawn(self.coordinator.notify_finish(member))
