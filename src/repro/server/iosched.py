"""Storage I/O schedulers (§4.5.1).

Three Linux block-layer schedulers reimplemented for the SDF stack:

* **no-op (FIFO)** -- the NVMe default: one queue, arrival order;
* **Deadline** -- separate read/write queues; requests are promoted when
  their deadline expires, reads preferred otherwise;
* **Kyber** -- separate read/write queues throttled to latency targets:
  completion feedback shrinks or grows each queue's dispatch budget.

:class:`CoordinatedScheduler` wraps any of them with RackBlox's
coordinated I/O scheduling: within the queue the base policy selects,
requests are reordered by ``Prio = Net_time + Storage_time +
Predict_time`` and the *largest* priority dispatches first (§3.4) -- the
request that has already lost the most end-to-end budget goes next.
"""

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from repro.errors import ConfigError
from repro.sim.core import MSEC

#: Dispatch-eligibility predicate: the server passes one to ``pop`` so a
#: request whose vSSD already has a full device queue stays *in* the
#: scheduler (where policy, including coordinated reordering, still
#: applies) instead of piling up below it.
Eligible = Optional[Callable[["IoRequest"], bool]]


def _first_eligible(queue: Deque["IoRequest"], eligible: Eligible) -> Optional[int]:
    """Index of the first dispatchable request in a queue, or ``None``."""
    if eligible is None:
        return 0 if queue else None
    for idx, request in enumerate(queue):
        if eligible(request):
            return idx
    return None


@dataclass
class IoRequest:
    """One I/O request queued in the storage stack."""

    kind: str  # "read" | "write"
    vssd_id: int
    lpn: int
    #: Time the request entered the server's queue.
    arrival_time: float
    #: Net_time: accumulated in-network latency (from the INT field).
    net_time: float = 0.0
    #: Predict_time: predicted return-path latency, stamped at enqueue.
    predict_time: float = 0.0
    #: Opaque cookie the server uses to complete the request.
    context: object = None

    def priority(self, now: float) -> float:
        """Prio_sched = Net_time + Storage_time + Predict_time (§3.4)."""
        storage_time = now - self.arrival_time
        return self.net_time + storage_time + self.predict_time

    @property
    def rank(self) -> float:
        """``priority(now)`` minus the shared ``now`` term.

        ``priority`` differences between two queued requests are constant
        over time (the clock advances for everyone equally), so comparing
        ranks picks the same winner as comparing priorities -- without
        re-reading the clock per candidate in the selection scan.
        """
        return self.net_time + self.predict_time - self.arrival_time


class FifoIoScheduler:
    """no-op: a single FIFO queue (the NVMe default)."""

    name = "fifo"

    def __init__(self) -> None:
        self._queue: Deque[IoRequest] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, request: IoRequest, now: float) -> None:
        """Enqueue a request (arrival order is dispatch order)."""
        self._queue.append(request)

    def pop(self, now: float, eligible: Eligible = None) -> Optional[IoRequest]:
        """Dispatch the first eligible request, FIFO."""
        idx = _first_eligible(self._queue, eligible)
        if idx is None:
            return None
        request = self._queue[idx]
        del self._queue[idx]
        return request

    def record_completion(self, kind: str, latency_us: float,
                          request: Optional[IoRequest] = None) -> None:
        """FIFO ignores completion feedback."""


class DeadlineIoScheduler:
    """Deadline: expired requests first, reads preferred otherwise.

    Default deadlines follow §4.5.1: 0.5 ms for reads, 1.75 ms for writes
    (the coordinated variant raises them to absorb network latency).
    """

    name = "deadline"

    def __init__(
        self,
        read_deadline_us: float = 0.5 * MSEC,
        write_deadline_us: float = 1.75 * MSEC,
    ) -> None:
        if read_deadline_us <= 0 or write_deadline_us <= 0:
            raise ConfigError("deadlines must be positive")
        self.read_deadline_us = read_deadline_us
        self.write_deadline_us = write_deadline_us
        self._reads: Deque[IoRequest] = deque()
        self._writes: Deque[IoRequest] = deque()

    def __len__(self) -> int:
        return len(self._reads) + len(self._writes)

    def push(self, request: IoRequest, now: float) -> None:
        """Enqueue into the read or write class queue."""
        (self._reads if request.kind == "read" else self._writes).append(request)

    def _deadline_of(self, request: IoRequest) -> float:
        limit = (
            self.read_deadline_us if request.kind == "read" else self.write_deadline_us
        )
        return request.arrival_time + limit

    def pop(self, now: float, eligible: Eligible = None) -> Optional[IoRequest]:
        """Dispatch per the deadline policy (expired first, then reads)."""
        read_idx = _first_eligible(self._reads, eligible)
        write_idx = _first_eligible(self._writes, eligible)
        # Expired request with the oldest deadline wins.
        candidates = []
        if read_idx is not None and self._deadline_of(self._reads[read_idx]) <= now:
            candidates.append((self._reads, read_idx))
        if write_idx is not None and self._deadline_of(self._writes[write_idx]) <= now:
            candidates.append((self._writes, write_idx))
        if candidates:
            queue, idx = min(
                candidates, key=lambda pair: self._deadline_of(pair[0][pair[1]])
            )
            request = queue[idx]
            del queue[idx]
            return request
        # Otherwise reads are preferred (they are latency critical).
        if read_idx is not None:
            request = self._reads[read_idx]
            del self._reads[read_idx]
            return request
        if write_idx is not None:
            request = self._writes[write_idx]
            del self._writes[write_idx]
            return request
        return None

    def record_completion(self, kind: str, latency_us: float,
                          request: Optional[IoRequest] = None) -> None:
        """Deadline ignores completion feedback."""


class KyberIoScheduler:
    """Kyber: latency-target throttling with completion feedback.

    Each queue has a dispatch budget.  When a class's observed latency
    (EWMA of completions) exceeds its target, the *other* class's budget is
    cut so the struggling class gets a larger share -- a faithful
    simplification of Kyber's domain-token scaling.  Targets default to
    §4.1's values: 750 us for reads, 3 ms for writes (95th percentile).
    """

    name = "kyber"

    def __init__(
        self,
        read_target_us: float = 0.75 * MSEC,
        write_target_us: float = 3.0 * MSEC,
        ewma_alpha: float = 0.3,
    ) -> None:
        if read_target_us <= 0 or write_target_us <= 0:
            raise ConfigError("latency targets must be positive")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ConfigError(f"ewma_alpha must be in (0,1], got {ewma_alpha}")
        self.read_target_us = read_target_us
        self.write_target_us = write_target_us
        self.ewma_alpha = ewma_alpha
        self._reads: Deque[IoRequest] = deque()
        self._writes: Deque[IoRequest] = deque()
        self._read_ewma = 0.0
        self._write_ewma = 0.0
        #: Consecutive dispatches granted to writes while reads lag.
        self._write_skips = 0

    def __len__(self) -> int:
        return len(self._reads) + len(self._writes)

    def push(self, request: IoRequest, now: float) -> None:
        """Enqueue into the read or write class queue."""
        (self._reads if request.kind == "read" else self._writes).append(request)

    def record_completion(self, kind: str, latency_us: float,
                          request: Optional[IoRequest] = None) -> None:
        if kind == "read":
            self._read_ewma += self.ewma_alpha * (latency_us - self._read_ewma)
        else:
            self._write_ewma += self.ewma_alpha * (latency_us - self._write_ewma)

    def _read_pressure(self) -> bool:
        return self._read_ewma > self.read_target_us

    def _write_pressure(self) -> bool:
        return self._write_ewma > self.write_target_us

    def pop(self, now: float, eligible: Eligible = None) -> Optional[IoRequest]:
        """Dispatch per Kyber's read-preferring, feedback-scaled shares."""
        read_idx = _first_eligible(self._reads, eligible)
        write_idx = _first_eligible(self._writes, eligible)
        if read_idx is None and write_idx is None:
            return None
        if write_idx is None:
            queue, idx = self._reads, read_idx
        elif read_idx is None:
            queue, idx = self._writes, write_idx
        else:
            # Both backlogged: reads preferred; writes are admitted 1-in-N,
            # where N grows when reads miss their target and shrinks when
            # writes miss theirs.
            write_share = 4
            if self._read_pressure():
                write_share = 8
            if self._write_pressure():
                write_share = max(2, write_share // 2)
            self._write_skips += 1
            if self._write_skips >= write_share:
                self._write_skips = 0
                queue, idx = self._writes, write_idx
            else:
                queue, idx = self._reads, read_idx
        request = queue[idx]
        del queue[idx]
        return request


class CoordinatedScheduler:
    """RackBlox's coordinated I/O scheduling on top of any base policy.

    The base policy still decides *which class* dispatches (deadlines,
    latency targets); coordination reorders *within* that choice by the
    end-to-end priority, so the request that has burned the most
    network+queue budget is served first.
    """

    def __init__(self, base) -> None:
        self.base = base
        self.name = f"coordinated-{base.name}"

    def __len__(self) -> int:
        return len(self.base)

    def push(self, request: IoRequest, now: float) -> None:
        """Delegate to the base policy's queues."""
        self.base.push(request, now)

    def record_completion(self, kind: str, latency_us: float,
                          request: Optional[IoRequest] = None) -> None:
        # The coordinated variant's raised targets (§4.5.1) are end-to-end
        # budgets, so the base policy's feedback must see the end-to-end
        # estimate: measured network time + storage time + predicted
        # return time -- not the storage component alone.
        if request is not None:
            latency_us = latency_us + request.net_time + request.predict_time
        self.base.record_completion(kind, latency_us)

    def pop(self, now: float, eligible: Eligible = None) -> Optional[IoRequest]:
        chosen = self.base.pop(now, eligible)
        if chosen is None:
            return None
        # Reorder within the queue the base policy selected: swap the
        # chosen request for the same-kind eligible request with the
        # maximum Prio_sched.
        queue = self._queue_of(chosen.kind)
        if queue is None:
            return chosen
        best_idx = -1
        best_rank = chosen.rank
        for idx, candidate in enumerate(queue):
            if eligible is not None and not eligible(candidate):
                continue
            rank = candidate.rank
            if rank > best_rank:
                best_rank = rank
                best_idx = idx
        if best_idx < 0:
            return chosen
        better = queue[best_idx]
        del queue[best_idx]
        queue.appendleft(chosen)  # chosen re-queued at the front of its class
        return better

    def _queue_of(self, kind: str) -> Optional[Deque[IoRequest]]:
        base = self.base
        if isinstance(base, FifoIoScheduler):
            return base._queue  # noqa: SLF001 - same-package access
        if isinstance(base, (DeadlineIoScheduler, KyberIoScheduler)):
            return base._reads if kind == "read" else base._writes  # noqa: SLF001
        return None


def make_scheduler(
    name: str,
    coordinated: bool = False,
    **kwargs,
):
    """Factory: ``fifo`` / ``deadline`` / ``kyber``, optionally coordinated.

    Coordinated Deadline/Kyber get the §4.5.1 raised parameters (deadlines
    and targets grown by the expected network latency) unless overridden.
    """
    name = name.lower()
    if name in ("fifo", "noop", "none"):
        base = FifoIoScheduler()
    elif name == "deadline":
        if coordinated and not kwargs:
            kwargs = {"read_deadline_us": 1.5 * MSEC, "write_deadline_us": 2.75 * MSEC}
        base = DeadlineIoScheduler(**kwargs)
    elif name == "kyber":
        if coordinated and not kwargs:
            kwargs = {"read_target_us": 1.75 * MSEC, "write_target_us": 4.0 * MSEC}
        base = KyberIoScheduler(**kwargs)
    else:
        raise ConfigError(f"unknown scheduler {name!r} (fifo/deadline/kyber)")
    return CoordinatedScheduler(base) if coordinated else base
