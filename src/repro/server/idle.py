"""Idle-time prediction for background GC (§3.5.1).

RackBlox predicts the next idle interval of a vSSD from the last interval
between I/O requests using exponential smoothing::

    T_i^predict = alpha * T_{i-1}^real + (1 - alpha) * T_{i-1}^predict

with ``alpha = 0.5`` by default.  When the prediction exceeds a threshold
(30 ms by default) the server runs background GC, notifying the switch
without waiting for approval.
"""

from repro.errors import ConfigError
from repro.sim.core import MSEC

DEFAULT_ALPHA = 0.5
DEFAULT_THRESHOLD_US = 30 * MSEC


class IdlePredictor:
    """Exponentially smoothed inter-request interval predictor."""

    def __init__(
        self,
        alpha: float = DEFAULT_ALPHA,
        threshold_us: float = DEFAULT_THRESHOLD_US,
    ) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ConfigError(f"alpha must be in [0,1], got {alpha}")
        if threshold_us <= 0:
            raise ConfigError(f"threshold must be positive, got {threshold_us}")
        self.alpha = alpha
        self.threshold_us = threshold_us
        self._last_request_at: float = 0.0
        self._predicted: float = 0.0
        self._seen_any = False

    def record_request(self, now: float) -> None:
        """Note a request arrival; updates the smoothed interval."""
        if self._seen_any:
            real_interval = now - self._last_request_at
            self._predicted = (
                self.alpha * real_interval + (1.0 - self.alpha) * self._predicted
            )
        self._last_request_at = now
        self._seen_any = True

    @property
    def predicted_idle_us(self) -> float:
        """The current T_i^predict."""
        return self._predicted

    def should_background_gc(self) -> bool:
        """True when the predicted idle interval exceeds the threshold."""
        return self._seen_any and self._predicted > self.threshold_us
