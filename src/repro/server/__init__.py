"""The storage server (SDF) stack.

Implements Algorithm 2 and its periphery: local I/O schedulers (no-op /
Deadline / Kyber) with coordinated variants that reorder by
``Net_time + Storage_time + Predict_time``, the sliding-window return-path
latency predictor, the DRAM write cache with background flushing, the
idle-time predictor for background GC, and the periodic GC monitor that
talks to the ToR switch.
"""

from repro.server.idle import IdlePredictor
from repro.server.iosched import (
    CoordinatedScheduler,
    DeadlineIoScheduler,
    FifoIoScheduler,
    IoRequest,
    KyberIoScheduler,
    make_scheduler,
)
from repro.server.predictor import ReturnLatencyPredictor
from repro.server.sdf import StorageServer
from repro.server.write_cache import WriteCache

__all__ = [
    "IoRequest",
    "FifoIoScheduler",
    "DeadlineIoScheduler",
    "KyberIoScheduler",
    "CoordinatedScheduler",
    "make_scheduler",
    "ReturnLatencyPredictor",
    "WriteCache",
    "IdlePredictor",
    "StorageServer",
]
