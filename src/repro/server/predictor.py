"""The return-path latency predictor (§3.4).

``Predict_time`` estimates how long the response will take to travel from
the storage server back to the client.  The paper uses a sliding window of
the average network latency of the **100 most recent incoming packets**,
per vSSD, with **separate windows for reads and writes** (their outgoing
packet sizes differ).
"""

from collections import deque
from typing import Deque, Dict, Tuple

from repro.errors import ConfigError

#: The paper's window: small enough to react to congestion onset, large
#: enough to smooth outliers.
DEFAULT_WINDOW = 100


class ReturnLatencyPredictor:
    """Per-(vSSD, op-kind) sliding-window mean of incoming network latency."""

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window <= 0:
            raise ConfigError(f"window must be positive, got {window}")
        self.window = window
        self._windows: Dict[Tuple[int, str], Deque[float]] = {}
        self._sums: Dict[Tuple[int, str], float] = {}
        self.observations = 0

    def _key(self, vssd_id: int, kind: str) -> Tuple[int, str]:
        if kind not in ("read", "write"):
            raise ConfigError(f"kind must be 'read' or 'write', got {kind!r}")
        return (vssd_id, kind)

    def observe(self, vssd_id: int, kind: str, net_latency_us: float) -> None:
        """Record the measured network latency of an incoming packet."""
        key = self._key(vssd_id, kind)
        window = self._windows.get(key)
        if window is None:
            window = deque(maxlen=self.window)
            self._windows[key] = window
            self._sums[key] = 0.0
        if len(window) == self.window:
            self._sums[key] -= window[0]
        window.append(net_latency_us)
        self._sums[key] += net_latency_us
        self.observations += 1

    def predict(self, vssd_id: int, kind: str) -> float:
        """Predicted return latency; 0 before any observation."""
        key = self._key(vssd_id, kind)
        window = self._windows.get(key)
        if not window:
            return 0.0
        return self._sums[key] / len(window)

    def window_fill(self, vssd_id: int, kind: str) -> int:
        """How many observations the window currently holds."""
        window = self._windows.get(self._key(vssd_id, kind))
        return len(window) if window is not None else 0
