"""Generator-based cooperative processes.

A *process function* is a generator that yields waitables::

    def worker(sim, store):
        item = yield store.get()
        yield Timeout(sim, 5.0)
        return item          # becomes the process's value

``Process`` itself is an :class:`~repro.sim.events.Event`, so processes can
wait on each other by yielding the other process.
"""

from typing import Any, Generator

from repro.errors import SimulationError
from repro.sim.events import Event, Interrupt


class Process(Event):
    """Drives a generator, resuming it whenever its awaited event fires."""

    __slots__ = ("_generator", "_waiting_on", "_interrupted_with")

    def __init__(self, sim, generator: Generator) -> None:
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process needs a generator, got {type(generator).__name__}; "
                "did you forget to call the process function?"
            )
        self._generator = generator
        self._waiting_on: Any = None
        self._interrupted_with: Any = None
        # Start on the next tick so the constructor returns before any of
        # the process body runs (matches SimPy semantics and avoids
        # surprising reentrancy during setup code).
        sim.schedule_after(0.0, self._start)

    def _start(self) -> None:
        self._resume(None, None)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self.triggered:
            return
        self._interrupted_with = Interrupt(cause)
        waiting = self._waiting_on
        self._waiting_on = None
        # Detach from whatever we were waiting on: the event may still fire
        # later but must no longer resume us.
        if waiting is not None:
            waiting._detach(self)  # noqa: SLF001
        self.sim.schedule_after(0.0, self._deliver_interrupt)

    def _deliver_interrupt(self) -> None:
        exc, self._interrupted_with = self._interrupted_with, None
        if exc is None or self.triggered:
            return
        self._step(exc, True)

    def _resume(self, event, _token) -> None:
        if self.triggered:
            return
        if event is not None and not event.ok:
            self._step(event._exception, True)  # noqa: SLF001
            return
        self._step(event.value if event is not None else None, False)

    def _step(self, arg, throw: bool) -> None:
        # One flat advance -- send or throw -- with no per-resume closure
        # allocation; this is the hottest call site in the whole kernel.
        generator = self._generator
        try:
            target = generator.throw(arg) if throw else generator.send(arg)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # An uncaught interrupt terminates the process quietly.
            self.succeed(None)
            return
        except Exception as exc:  # propagate into waiters
            self.fail(exc)
            return
        if isinstance(target, Process) and target is self:
            self.fail(SimulationError("process cannot wait on itself"))
            return
        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process yielded {target!r}; expected an Event/Timeout/Process"
                )
            )
            return
        self._waiting_on = _WaitBinding(self, target)


class _WaitBinding:
    """Connects a process to the event it waits on, supporting detach."""

    __slots__ = ("process", "active")

    def __init__(self, process: Process, event: Event) -> None:
        self.process = process
        self.active = True
        if event.triggered:
            # Defer through the scheduler: a tight loop over
            # already-available events must not recurse on the C stack.
            process.sim.schedule_after(0.0, lambda: self._fire(event))
        else:
            event.add_callback(self._fire)

    def _fire(self, event: Event) -> None:
        if self.active:
            self.active = False
            self.process._waiting_on = None  # noqa: SLF001
            self.process._resume(event, None)  # noqa: SLF001

    def _detach(self, _process: Process) -> None:
        self.active = False
