"""Synchronisation resources: stores and counted resources.

These model the queues that pervade the reproduction: NIC transmit queues,
switch ingress pipelines, per-channel command queues, and the storage-server
I/O scheduler all sit on a :class:`Store` variant.
"""

import heapq
import itertools
from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import Event


class Store:
    """An unbounded FIFO queue with event-based ``get``.

    ``put`` never blocks (capacity pressure in the modelled systems is
    expressed through latency, not loss).  ``get`` returns an
    :class:`Event` that fires with the next item.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> Tuple[Any, ...]:
        """Snapshot of queued items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; ``None`` when the store is empty."""
        if self._items:
            return self._items.popleft()
        return None


class PriorityStore:
    """A store whose ``get`` returns the item with the *smallest* key.

    Items are ``(priority, payload)`` pairs; ties break FIFO via an internal
    sequence number so identical priorities preserve arrival order.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        self._heap: List[Tuple[Any, int, Any]] = []
        self._getters: Deque[Event] = deque()
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def items(self) -> Tuple[Any, ...]:
        """Snapshot of queued payloads in priority order."""
        return tuple(payload for _, _, payload in sorted(self._heap))

    def put(self, priority: Any, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            heapq.heappush(self._heap, (priority, next(self._seq), item))

    def get(self) -> Event:
        event = Event(self.sim)
        if self._heap:
            _, _, item = heapq.heappop(self._heap)
            event.succeed(item)
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Optional[Any]:
        if self._heap:
            return heapq.heappop(self._heap)[2]
        return None


class Resource:
    """A counted resource: at most ``capacity`` concurrent holders.

    ``acquire`` returns an event that fires when a slot is granted; the
    holder must call ``release`` exactly once.
    """

    def __init__(self, sim, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release() without a matching acquire()")
        if self._waiters:
            # Hand the slot directly to the next waiter; _in_use is
            # unchanged because occupancy transfers.
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1
