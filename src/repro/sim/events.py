"""Waitable events for generator-based processes.

A process waits by yielding one of these objects.  :class:`Event` is the
one-shot synchronisation primitive; :class:`Timeout` is an event that fires
after a delay; :class:`AllOf` / :class:`AnyOf` compose events.
"""

from typing import Any, Callable, Iterable, List, Optional

from repro.errors import SimulationError


class Event:
    """A one-shot event that callbacks (typically processes) can wait on.

    An event is *triggered* exactly once, either with :meth:`succeed` or
    :meth:`fail`.  Waiters registered after triggering are invoked
    immediately, so there is no race between triggering and waiting.
    """

    __slots__ = ("sim", "_callbacks", "_triggered", "_value", "_exception")

    def __init__(self, sim) -> None:
        self.sim = sim
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._triggered = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        """True once the event succeeded (as opposed to failed)."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event has not been triggered yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional payload."""
        self._trigger(value=value)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to raise in waiters."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._trigger(exception=exception)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when triggered (immediately if already done)."""
        if self._triggered:
            fn(self)
        else:
            assert self._callbacks is not None
            self._callbacks.append(fn)

    def _trigger(
        self, value: Any = None, exception: Optional[BaseException] = None
    ) -> None:
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self._exception = exception
        callbacks, self._callbacks = self._callbacks, None
        assert callbacks is not None
        for fn in callbacks:
            fn(self)


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim, delay: float, value: Any = None) -> None:
        super().__init__(sim)
        if delay < 0:
            raise SimulationError(f"negative timeout {delay!r}")
        self.delay = delay
        sim.schedule_after(delay, lambda: self.succeed(value))


class AllOf(Event):
    """Fires when every child event has succeeded.

    The value is the list of child values in construction order.  If any
    child fails, this event fails with that child's exception.
    """

    __slots__ = ("_pending", "_children")

    def __init__(self, sim, events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._children = list(events)
        self._pending = len(self._children)
        if self._pending == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._triggered:
            return
        if not child.ok:
            self.fail(child._exception)  # noqa: SLF001 - same-module access
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Event):
    """Fires when the first child event triggers; value is that event."""

    __slots__ = ()

    def __init__(self, sim, events: Iterable[Event]) -> None:
        super().__init__(sim)
        children = list(events)
        if not children:
            raise SimulationError("AnyOf requires at least one event")
        for child in children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if not self._triggered:
            self.succeed(child)


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause
