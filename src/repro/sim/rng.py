"""Seeded random-number plumbing.

Every stochastic component takes a :class:`RandomSource` so experiments are
reproducible bit-for-bit from a single seed, and independent subsystems
(workload arrivals, network latency, device variation) draw from independent
substreams that do not perturb each other when one consumes more numbers.
"""

import random
from typing import Optional, Sequence


class RandomSource:
    """A seeded RNG with named, independent substreams."""

    def __init__(self, seed: int = 0x5EED) -> None:
        self.seed = seed
        self._root = random.Random(seed)

    def stream(self, name: str) -> random.Random:
        """Return an independent ``random.Random`` derived from ``name``.

        The substream seed depends only on the root seed and the name, so
        adding a new consumer never changes the draws of existing ones.
        """
        return random.Random(f"{self.seed}:{name}")

    def spawn(self, name: str) -> "RandomSource":
        """Derive a child source (for per-server / per-client fan-out)."""
        child_seed = random.Random(f"{self.seed}:{name}").getrandbits(63)
        return RandomSource(child_seed)


def zipfian_weights(n: int, theta: float = 0.99) -> Sequence[float]:
    """Weights of a zipfian distribution over ranks ``1..n``.

    ``theta`` is the YCSB skew constant (0.99 by default, as used in the
    paper's zipfian request distribution).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    raw = [1.0 / (rank**theta) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


class ZipfianSampler:
    """Samples integers in ``[0, n)`` with zipfian popularity.

    Uses the rejection-inversion-free cumulative method: fine for the sizes
    we use (thousands of keys) and exactly reproducible.
    """

    def __init__(self, n: int, theta: float = 0.99, rng: Optional[random.Random] = None) -> None:
        self.n = n
        self.theta = theta
        self._rng = rng if rng is not None else random.Random(0)
        weights = zipfian_weights(n, theta)
        self._cdf = []
        acc = 0.0
        for w in weights:
            acc += w
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against float drift

    def sample(self) -> int:
        import bisect

        u = self._rng.random()
        return bisect.bisect_left(self._cdf, u)
