"""The event loop at the heart of the simulation.

Time is a ``float`` in **microseconds** throughout the package; that unit
matches the latency scales the paper reports (tens of microseconds for
flash reads, milliseconds for GC pauses).
"""

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import SimulationError

#: Conversion helpers so configuration reads naturally.
USEC = 1.0
MSEC = 1_000.0
SEC = 1_000_000.0

#: Compact the heap once cancelled entries could be half of it (and there
#: are enough of them for a rebuild to be worth the O(n) pass).
_COMPACT_MIN_CANCELLED = 64


class Simulator:
    """A discrete-event simulator with a virtual microsecond clock.

    Callbacks are ordered by ``(time, sequence)`` where the sequence number
    preserves FIFO order among events scheduled for the same instant, making
    runs fully deterministic.

    Cancellation is lazy -- a cancelled entry stays in the heap until it
    surfaces -- but bounded: the simulator counts live cancellations and
    compacts the heap in place once they could make up half of it, so
    timeout-churn workloads (schedule, cancel, repeat) cannot grow the
    heap without limit.
    """

    __slots__ = ("_now", "_heap", "_seq", "_running", "_event_count", "_cancelled")

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, "_Entry"]] = []
        self._seq = itertools.count()
        self._running = False
        self._event_count = 0
        self._cancelled = 0  # cancelled entries still sitting in the heap

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def event_count(self) -> int:
        """Number of callbacks executed so far (useful for budget checks)."""
        return self._event_count

    @property
    def pending_count(self) -> int:
        """Heap entries still scheduled (including not-yet-reaped cancels)."""
        return len(self._heap)

    def call_at(self, when: float, fn: Callable[[], None]) -> "EventHandle":
        """Schedule ``fn`` to run at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when:.3f} before now={self._now:.3f}"
            )
        entry = _Entry(fn)
        heapq.heappush(self._heap, (when, next(self._seq), entry))
        return EventHandle(entry, self)

    def call_after(self, delay: float, fn: Callable[[], None]) -> "EventHandle":
        """Schedule ``fn`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, fn)

    def schedule_after(self, delay: float, fn: Callable[[], None]) -> None:
        """Fire-and-forget :meth:`call_after` without a cancellation handle.

        The kernel's own deferrals (timeout expiry, process start, resume
        of a process that yielded an already-triggered event) never cancel,
        so they skip the ``_Entry``/:class:`EventHandle` allocations -- the
        bare callable sits in the heap.  Ordering is identical to
        :meth:`call_after`: same heap, same sequence counter.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        heapq.heappush(self._heap, (self._now + delay, next(self._seq), fn))

    def spawn(self, generator: Generator) -> "Any":
        """Start a new :class:`~repro.sim.process.Process` from a generator."""
        from repro.sim.process import Process

        return Process(self, generator)

    def _note_cancel(self) -> None:
        """Bookkeeping for a newly cancelled pending entry."""
        self._cancelled += 1
        heap = self._heap
        if (
            self._cancelled >= _COMPACT_MIN_CANCELLED
            and self._cancelled * 2 >= len(heap)
        ):
            # In-place so aliases held by a running loop stay valid.  Bare
            # callables (schedule_after) are never cancelled, so only
            # _Entry items are candidates for dropping.
            heap[:] = [
                item for item in heap
                if item[2].__class__ is not _Entry or not item[2].cancelled
            ]
            heapq.heapify(heap)
            self._cancelled = 0

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run the event loop.

        Stops when the heap drains, when the next event would pass ``until``
        (the clock is then advanced exactly to ``until``), or after
        ``max_events`` callbacks.  Returns the final simulated time.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until:.3f}) is in the past (now={self._now:.3f})"
            )
        self._running = True
        # Hot loop: bind invariants to locals.  ``heap`` aliases the live
        # list -- compaction mutates it in place, and callbacks push into
        # the same object -- while the executed-event count is kept local
        # and flushed in ``finally``.
        heap = self._heap
        heappop = heapq.heappop
        count = self._event_count
        try:
            budget = max_events if max_events is not None else -1
            while heap:
                head = heap[0]
                when = head[0]
                if until is not None and when > until:
                    self._now = until
                    break
                heappop(heap)
                entry = head[2]
                if entry.__class__ is _Entry:
                    if entry.cancelled:
                        if self._cancelled > 0:
                            self._cancelled -= 1
                        continue
                    fn = entry.fn
                else:
                    fn = entry  # bare callable from schedule_after
                self._now = when
                count += 1
                fn()
                if budget > 0:
                    budget -= 1
                    if budget == 0:
                        break
            else:
                # Heap drained; if an explicit horizon was given, honour it.
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._event_count = count
            self._running = False
        return self._now

    def peek(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        heap = self._heap
        while heap and heap[0][2].__class__ is _Entry and heap[0][2].cancelled:
            heapq.heappop(heap)
            if self._cancelled > 0:
                self._cancelled -= 1
        if not heap:
            return None
        return heap[0][0]


class _Entry:
    """Internal heap entry; indirection makes cancellation O(1)."""

    __slots__ = ("fn", "cancelled")

    def __init__(self, fn: Callable[[], None]) -> None:
        self.fn = fn
        self.cancelled = False


class EventHandle:
    """A handle to a scheduled callback that allows cancellation."""

    __slots__ = ("_entry", "_sim")

    def __init__(self, entry: _Entry, sim: Optional[Simulator] = None) -> None:
        self._entry = entry
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        entry = self._entry
        if not entry.cancelled:
            entry.cancelled = True
            if self._sim is not None:
                self._sim._note_cancel()

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled
