"""Discrete-event simulation kernel.

A small, dependency-free event-driven simulator in the style of SimPy:
generator functions become cooperatively scheduled :class:`Process` objects
that ``yield`` waitables (:class:`Timeout`, :class:`Event`, other processes).

The kernel is deliberately minimal -- an event heap, a virtual clock, and a
handful of synchronisation primitives -- because every subsystem in the
RackBlox reproduction (flash channels, switch pipeline, I/O schedulers,
network links) is expressed on top of it.
"""

from repro.sim.core import Simulator
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.process import Process
from repro.sim.resources import PriorityStore, Resource, Store
from repro.sim.rng import RandomSource

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Process",
    "Resource",
    "Store",
    "PriorityStore",
    "RandomSource",
]
