"""Tail-latency attribution: *why* were the slow requests slow?

The paper's motivating evidence (Fig. 2, Fig. 14-15) decomposes tail
latency into GC stalls, network time, and queueing.  This module
reproduces that breakdown from traces alone: take the requests at or
above a latency percentile, sum each one's span time per category
(``gc`` / ``media`` / ``queue`` / ``net``), and bucket every tail request
by its *dominant* category -- the stage that consumed the most of its
end-to-end budget.

``coverage`` reports the fraction of total tail latency the spans
classify; anything below ~1.0 is instrumentation gaps, not measurement
noise, since spans and end-to-end times share one simulated clock.
"""

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.errors import ConfigError
from repro.metrics.percentiles import percentile as exact_percentile
from repro.trace.span import CATEGORIES, RequestTrace, finished_traces


@dataclass
class AttributionReport:
    """The tail-latency breakdown of one traced run."""

    kind: str
    percentile: float
    threshold_us: float
    total_requests: int
    tail_requests: int
    #: Dominant-stage bucket -> number of tail requests.
    by_category: Dict[str, int] = field(default_factory=dict)
    #: Category -> summed span time across tail requests (µs).
    tail_time_by_category: Dict[str, float] = field(default_factory=dict)
    #: Summed end-to-end latency of the tail requests (µs).
    tail_total_us: float = 0.0
    #: Tail requests whose flash service overlapped GC.
    gc_blocked: int = 0

    @property
    def coverage(self) -> float:
        """Fraction of tail latency classified into named stages."""
        if self.tail_total_us <= 0.0:
            return 0.0
        return min(1.0, sum(self.tail_time_by_category.values()) / self.tail_total_us)

    def dominant(self) -> str:
        """The bucket holding the most tail requests."""
        if not self.by_category:
            return "none"
        return max(
            CATEGORIES, key=lambda c: (self.by_category.get(c, 0), -CATEGORIES.index(c))
        )

    def as_dict(self) -> Dict[str, object]:
        """A JSON-safe flattening (what the live service's /stats ships)."""
        return {
            "kind": self.kind,
            "percentile": self.percentile,
            "threshold_us": self.threshold_us,
            "total_requests": self.total_requests,
            "tail_requests": self.tail_requests,
            "dominant": self.dominant(),
            "coverage": self.coverage,
            "gc_blocked": self.gc_blocked,
            "by_category": dict(self.by_category),
            "tail_time_by_category": dict(self.tail_time_by_category),
        }

    def describe(self) -> str:
        lines = [
            f"p{self.percentile:g} {self.kind} tail attribution "
            f"({self.tail_requests}/{self.total_requests} requests >= "
            f"{self.threshold_us:.0f}us):",
        ]
        for category in CATEGORIES:
            count = self.by_category.get(category, 0)
            time_us = self.tail_time_by_category.get(category, 0.0)
            if count == 0 and time_us == 0.0:
                continue
            share = time_us / self.tail_total_us if self.tail_total_us else 0.0
            lines.append(
                f"  {category:6s} dominant in {count:4d} requests, "
                f"{time_us:10.0f}us total ({share:5.1%} of tail time)"
            )
        lines.append(
            f"  coverage {self.coverage:.1%} of tail latency classified; "
            f"{self.gc_blocked} tail requests GC-blocked"
        )
        return "\n".join(lines)


def attribute_tail(
    traces: Iterable[RequestTrace],
    percentile: float = 99.0,
    kind: str = "read",
) -> AttributionReport:
    """Bucket the >= p``percentile`` requests of ``kind`` by dominant stage."""
    if not 0.0 <= percentile <= 100.0:
        raise ConfigError(f"percentile must be in [0, 100], got {percentile}")
    finished: List[RequestTrace] = [
        t for t in finished_traces(traces) if t.kind == kind
    ]
    if not finished:
        return AttributionReport(
            kind=kind, percentile=percentile, threshold_us=0.0,
            total_requests=0, tail_requests=0,
        )
    totals = [t.total_us for t in finished]
    threshold = exact_percentile(totals, percentile)
    tail = [t for t in finished if t.total_us >= threshold]
    report = AttributionReport(
        kind=kind,
        percentile=percentile,
        threshold_us=threshold,
        total_requests=len(finished),
        tail_requests=len(tail),
    )
    for trace in tail:
        report.tail_total_us += trace.total_us
        for category, time_us in trace.category_totals().items():
            report.tail_time_by_category[category] = (
                report.tail_time_by_category.get(category, 0.0) + time_us
            )
        dominant = trace.dominant_category()
        if dominant is not None:
            report.by_category[dominant] = report.by_category.get(dominant, 0) + 1
        if trace.gc_blocked():
            report.gc_blocked += 1
    return report
