"""Tracers: who decides which requests get spans.

Two implementations share one duck type:

* :class:`Tracer` -- probabilistic *head* sampling (the decision is made
  once, when the request is issued, so a sampled request is traced end to
  end); finished traces accumulate in memory, bounded by ``max_traces``.
* :class:`NullTracer` -- the zero-overhead default.  ``start_request``
  returns ``None``, so every instrumentation site degrades to one method
  call per request plus ``payload.get("trace")`` lookups that miss; no
  span objects are ever allocated.

Sampling is driven by a dedicated seeded RNG, so the *same* run traced at
the same rate samples the same requests in any process -- and, crucially,
the sampling draw never touches the simulation's RNG streams, so enabling
tracing cannot change simulated behaviour.
"""

import random
from typing import Any, Dict, List, Optional

from repro.errors import ConfigError
from repro.trace.span import RequestTrace, finished_traces


class NullTracer:
    """Tracing disabled: never samples, never allocates."""

    enabled = False
    sample_rate = 0.0

    def start_request(
        self, trace_id: int, kind: str, client: str, now: float, **attrs: Any
    ) -> None:
        """Head-sampling decision: never traced."""
        return None

    def finish(self, trace: RequestTrace, now: float) -> None:
        """No-op (no trace can exist)."""

    def collection(self) -> Optional["TraceCollection"]:
        """No traces were collected."""
        return None


class Tracer:
    """Head-sampling tracer collecting finished request traces."""

    enabled = True

    def __init__(
        self,
        sample_rate: float = 1.0,
        seed: int = 0,
        max_traces: int = 200_000,
    ) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ConfigError(
                f"sample_rate must be in (0, 1], got {sample_rate} "
                "(use NullTracer / make_tracer for rate 0)"
            )
        if max_traces < 1:
            raise ConfigError(f"max_traces must be >= 1, got {max_traces}")
        self.sample_rate = sample_rate
        self.max_traces = max_traces
        self._rng = random.Random(seed)
        self.traces: List[RequestTrace] = []
        self.started = 0
        self.sampled = 0
        self.dropped = 0

    def start_request(
        self, trace_id: int, kind: str, client: str, now: float, **attrs: Any
    ) -> Optional[RequestTrace]:
        """Head sampling: decide here, once, whether this request is traced."""
        self.started += 1
        if self.sample_rate < 1.0 and self._rng.random() >= self.sample_rate:
            return None
        if len(self.traces) >= self.max_traces:
            self.dropped += 1
            return None
        trace = RequestTrace(trace_id, kind, client, now, attrs or None)
        self.sampled += 1
        self.traces.append(trace)
        return trace

    def finish(self, trace: RequestTrace, now: float) -> None:
        """Close a trace at its completion time."""
        trace.finish(now)

    def collection(self) -> "TraceCollection":
        """A picklable snapshot of everything collected so far."""
        return TraceCollection(
            traces=finished_traces(self.traces),
            sample_rate=self.sample_rate,
            started=self.started,
            sampled=self.sampled,
        )


def make_tracer(sample_rate: float, seed: int = 0):
    """``NullTracer`` at rate 0, a sampling :class:`Tracer` otherwise."""
    if sample_rate < 0.0 or sample_rate > 1.0:
        raise ConfigError(f"sample_rate must be in [0, 1], got {sample_rate}")
    if sample_rate == 0.0:
        return NullTracer()
    return Tracer(sample_rate=sample_rate, seed=seed)


class TraceCollection:
    """Finished traces from one run, ready to export or attribute.

    Plain data end to end, so it rides inside a pickled
    :class:`~repro.experiments.runner.RackResult` across the process-pool
    fan-out.
    """

    __slots__ = ("traces", "sample_rate", "started", "sampled")

    def __init__(
        self,
        traces: List[RequestTrace],
        sample_rate: float,
        started: int = 0,
        sampled: int = 0,
    ) -> None:
        self.traces = traces
        self.sample_rate = sample_rate
        self.started = started
        self.sampled = sampled

    def __len__(self) -> int:
        return len(self.traces)

    def of_kind(self, kind: str) -> List[RequestTrace]:
        return [t for t in self.traces if t.kind == kind]

    def to_chrome(self) -> Dict[str, Any]:
        """The Chrome trace-event (Perfetto-loadable) document."""
        from repro.trace.chrome import to_chrome_trace

        return to_chrome_trace(self.traces)

    def attribution(self, percentile: float = 99.0, kind: str = "read"):
        """Tail-latency attribution of the collected traces."""
        from repro.trace.attribution import attribute_tail

        return attribute_tail(self.traces, percentile=percentile, kind=kind)

    def summary(self) -> Dict[str, float]:
        """Flat headline numbers (merged into ``RackResult.summary()``)."""
        out = {
            "traced_requests": float(len(self.traces)),
            "trace_sample_rate": self.sample_rate,
        }
        reads = self.of_kind("read")
        if reads:
            out["traced_gc_blocked_reads"] = float(
                sum(1 for t in reads if t.gc_blocked())
            )
        return out

    def __getstate__(self):
        return (self.traces, self.sample_rate, self.started, self.sampled)

    def __setstate__(self, state) -> None:
        self.traces, self.sample_rate, self.started, self.sampled = state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TraceCollection({len(self.traces)} traces, "
            f"rate={self.sample_rate})"
        )
