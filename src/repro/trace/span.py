"""Spans: the unit of request-level tracing.

A request's journey through the rack is recorded as a flat list of
:class:`Span` intervals in simulated microseconds -- one per stage the
paper's latency decomposition names (§3.4's ``Net_time`` /
``Storage_time`` split, Figure 2's GC-induced tail).  Stage names are
namespaced (``net.*``, ``switch.*``, ``server.*``, ``storage.*``) and map
onto four attribution categories:

* ``net``     -- fabric traversal time (the INT-measured component);
* ``queue``   -- time queued behind other requests (switch egress
  scheduler, server I/O scheduler);
* ``gc``      -- flash service that overlapped a GC pass on the vSSD;
* ``media``   -- flash service with no GC interference (plus DRAM
  write-cache admission).

Spans carry only plain data (floats, strings, small dicts) so a trace
pickles across the process-pool fan-out unchanged.
"""

from typing import Any, Dict, Iterable, List, Optional

#: Attribution categories, in report order.
CATEGORIES = ("gc", "media", "queue", "net")

#: Span name -> attribution category.  ``storage.media`` is resolved per
#: span: it lands in ``gc`` when its ``gc`` attribute is truthy.
STAGE_CATEGORIES: Dict[str, str] = {
    "net.client_to_tor": "net",
    "net.tor_to_server": "net",
    "net.server_to_tor": "net",
    "net.tor_to_client": "net",
    "net.redirect_relay": "net",
    "net.tor_egress": "queue",
    "net.client_egress": "queue",
    "server.queue": "queue",
    "server.write_cache": "media",
    "storage.media": "media",
}


def category_of(name: str, attrs: Optional[Dict[str, Any]] = None) -> Optional[str]:
    """The attribution category of a span, or ``None`` for markers."""
    category = STAGE_CATEGORIES.get(name)
    if category == "media" and name == "storage.media" and attrs and attrs.get("gc"):
        return "gc"
    return category


class Span:
    """One timed stage of one request (closed interval, sim-µs)."""

    __slots__ = ("name", "start_us", "end_us", "attrs")

    def __init__(
        self,
        name: str,
        start_us: float,
        end_us: float,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.start_us = start_us
        self.end_us = end_us
        self.attrs = attrs

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    @property
    def category(self) -> Optional[str]:
        return category_of(self.name, self.attrs)

    # __slots__ classes need explicit pickle support.
    def __getstate__(self):
        return (self.name, self.start_us, self.end_us, self.attrs)

    def __setstate__(self, state) -> None:
        self.name, self.start_us, self.end_us, self.attrs = state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, {self.start_us:.1f}..{self.end_us:.1f}"
            f"{', ' + repr(self.attrs) if self.attrs else ''})"
        )


class RequestTrace:
    """The full per-stage record of one traced request."""

    __slots__ = ("trace_id", "kind", "client", "start_us", "end_us", "spans", "attrs")

    def __init__(
        self,
        trace_id: int,
        kind: str,
        client: str,
        start_us: float,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.trace_id = trace_id
        self.kind = kind
        self.client = client
        self.start_us = start_us
        #: Set by :meth:`finish`; ``None`` while the request is in flight
        #: (a dropped packet never finishes its trace).
        self.end_us: Optional[float] = None
        self.spans: List[Span] = []
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}

    # ------------------------------------------------------------ recording

    def add_span(self, name: str, start_us: float, end_us: float, **attrs: Any) -> Span:
        """Record one completed stage."""
        span = Span(name, start_us, end_us, attrs or None)
        self.spans.append(span)
        return span

    def instant(self, name: str, at_us: float, **attrs: Any) -> Span:
        """Record a zero-duration marker (e.g. the switch pipeline pass)."""
        return self.add_span(name, at_us, at_us, **attrs)

    def finish(self, end_us: float) -> None:
        self.end_us = end_us

    @property
    def finished(self) -> bool:
        return self.end_us is not None

    @property
    def total_us(self) -> float:
        """End-to-end latency of the traced request."""
        if self.end_us is None:
            return 0.0
        return self.end_us - self.start_us

    # ------------------------------------------------------------- analysis

    def stage_totals(self) -> Dict[str, float]:
        """Summed duration per span name."""
        out: Dict[str, float] = {}
        for span in self.spans:
            out[span.name] = out.get(span.name, 0.0) + span.duration_us
        return out

    def category_totals(self) -> Dict[str, float]:
        """Summed duration per attribution category (markers excluded)."""
        out: Dict[str, float] = {}
        for span in self.spans:
            category = span.category
            if category is not None:
                out[category] = out.get(category, 0.0) + span.duration_us
        return out

    def attributed_us(self) -> float:
        """Total time classified into a named category."""
        return sum(self.category_totals().values())

    def coverage(self) -> float:
        """Fraction of end-to-end latency the spans account for."""
        total = self.total_us
        if total <= 0.0:
            return 0.0
        return min(1.0, self.attributed_us() / total)

    def dominant_category(self) -> Optional[str]:
        """The category that consumed the most time (ties: report order)."""
        totals = self.category_totals()
        if not totals:
            return None
        return max(CATEGORIES, key=lambda c: (totals.get(c, 0.0), -CATEGORIES.index(c)))

    def gc_blocked(self) -> bool:
        """True when any flash service overlapped a GC pass."""
        return any(span.category == "gc" for span in self.spans)

    def __getstate__(self):
        return (
            self.trace_id, self.kind, self.client, self.start_us,
            self.end_us, self.spans, self.attrs,
        )

    def __setstate__(self, state) -> None:
        (
            self.trace_id, self.kind, self.client, self.start_us,
            self.end_us, self.spans, self.attrs,
        ) = state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RequestTrace(id={self.trace_id}, kind={self.kind!r}, "
            f"client={self.client!r}, spans={len(self.spans)}, "
            f"total={self.total_us:.1f}us)"
        )


def finished_traces(traces: Iterable[RequestTrace]) -> List[RequestTrace]:
    """Only the traces whose request actually completed."""
    return [t for t in traces if t.finished]
