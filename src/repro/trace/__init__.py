"""Request-level distributed tracing for the simulated rack.

The paper's co-design exists to answer "why was this p99 read slow?"
(§3.4, Fig. 2, Fig. 14-15); this package answers it from inside the
reproduction: a :class:`Tracer` threads per-stage :class:`Span`s through
the full request path, a Chrome trace-event exporter makes individual
requests inspectable in Perfetto, and
:func:`~repro.trace.attribution.attribute_tail` rebuilds the paper's
tail-latency breakdown from traces alone.
"""

from repro.trace.attribution import AttributionReport, attribute_tail
from repro.trace.chrome import (
    chrome_trace_events,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.trace.span import (
    CATEGORIES,
    STAGE_CATEGORIES,
    RequestTrace,
    Span,
    category_of,
    finished_traces,
)
from repro.trace.tracer import NullTracer, TraceCollection, Tracer, make_tracer

__all__ = [
    "AttributionReport",
    "attribute_tail",
    "chrome_trace_events",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "CATEGORIES",
    "STAGE_CATEGORIES",
    "RequestTrace",
    "Span",
    "category_of",
    "finished_traces",
    "NullTracer",
    "TraceCollection",
    "Tracer",
    "make_tracer",
]
