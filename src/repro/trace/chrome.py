"""Chrome trace-event export (Perfetto- and chrome://tracing-loadable).

The exporter emits the JSON object format of the Trace Event spec: a
top-level ``{"traceEvents": [...]}`` document whose events are complete
(``"ph": "X"``) slices with microsecond timestamps -- conveniently the
simulator's native unit, so spans export with no conversion.

Each traced request becomes one *thread* (``tid`` = trace id) inside one
process per client (``pid`` rotates per client name), labelled by a
``thread_name`` metadata event, so Perfetto renders a run as one swimlane
per request with its stage spans laid end to end.
"""

import json
from typing import Any, Dict, Iterable, List

from repro.trace.span import RequestTrace, category_of

#: ``ph`` values this exporter emits (and the schema check accepts).
COMPLETE_EVENT = "X"
METADATA_EVENT = "M"


def _sanitize(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """JSON-safe copy of span attributes."""
    out: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (bool, int, float, str)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out


def chrome_trace_events(traces: Iterable[RequestTrace]) -> List[Dict[str, Any]]:
    """Flatten traces into trace-event dicts, one ``X`` slice per span."""
    events: List[Dict[str, Any]] = []
    pids: Dict[str, int] = {}
    for trace in traces:
        pid = pids.setdefault(trace.client, len(pids) + 1)
        tid = trace.trace_id
        events.append({
            "name": "thread_name",
            "ph": METADATA_EVENT,
            "pid": pid,
            "tid": tid,
            "args": {"name": f"{trace.kind} rid={trace.trace_id} {trace.client}"},
        })
        for span in trace.spans:
            event: Dict[str, Any] = {
                "name": span.name,
                "cat": category_of(span.name, span.attrs) or "marker",
                "ph": COMPLETE_EVENT,
                "ts": span.start_us,
                "dur": span.duration_us,
                "pid": pid,
                "tid": tid,
            }
            if span.attrs:
                event["args"] = _sanitize(span.attrs)
            events.append(event)
    return events


def to_chrome_trace(traces: Iterable[RequestTrace]) -> Dict[str, Any]:
    """The complete Chrome trace document for a set of traces."""
    return {
        "traceEvents": chrome_trace_events(traces),
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.trace", "time_unit": "us"},
    }


def write_chrome_trace(traces: Iterable[RequestTrace], path: str) -> int:
    """Write the trace document to ``path``; returns the event count."""
    document = to_chrome_trace(traces)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=None, separators=(",", ":"))
    return len(document["traceEvents"])


def validate_chrome_trace(document: Dict[str, Any]) -> None:
    """Schema check: raise ``ValueError`` unless ``document`` is loadable.

    Checks the invariants Perfetto's importer relies on: a
    ``traceEvents`` list whose members carry ``name``/``ph``/``pid``/
    ``tid``, with non-negative numeric ``ts``/``dur`` on every complete
    event -- and that the whole document survives a JSON round trip.
    """
    if not isinstance(document, dict):
        raise ValueError("trace document must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document needs a 'traceEvents' list")
    for idx, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{idx}] is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"traceEvents[{idx}] missing {key!r}")
        ph = event["ph"]
        if ph not in (COMPLETE_EVENT, METADATA_EVENT):
            raise ValueError(f"traceEvents[{idx}] has unsupported ph {ph!r}")
        if ph == COMPLETE_EVENT:
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ValueError(
                        f"traceEvents[{idx}].{key} must be a non-negative "
                        f"number, got {value!r}"
                    )
    json.loads(json.dumps(document))  # must survive a JSON round trip
