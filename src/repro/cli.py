"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

* ``run`` -- one rack experiment with chosen system/workload parameters;
* ``trace`` -- a traced rack run: per-stage spans, tail-latency
  attribution, optional Chrome trace-event (Perfetto) export;
* ``serve`` -- expose a rack as a live asyncio TCP service (sim-time
  bridge, admission control, graceful drain on SIGINT/SIGTERM);
* ``loadgen`` -- open/closed-loop load generation against ``serve``;
* ``chaos`` -- replay a fault-injection schedule against a rack under
  load and print the availability/MTTR/invariant report (exit 1 if any
  recovery invariant broke);
* ``figures`` -- reproduce paper figures (same as
  ``python -m repro.experiments.report``);
* ``wear`` -- the long-horizon wear-leveling campaign;
* ``list`` -- enumerate available systems, workloads, and figures.

Exit codes are uniform across subcommands: ``0`` success, ``1`` runtime
failure (an experiment or service that ran and failed), ``2`` usage
error (bad arguments -- argparse's own convention, matched here for the
validation argparse cannot express).
"""

import argparse
import sys
from typing import List, Optional

from repro.cluster.config import RackConfig, SystemType
from repro.errors import ReproError
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.report import run_figures
from repro.experiments.runner import run_rack_experiment
from repro.flash.timing import DEVICE_PROFILES, profile_by_name
from repro.net.latency import NETWORK_PROFILES
from repro.net.latency import profile_by_name as net_profile_by_name
from repro.wear.simulate import WearSimulation
from repro.workloads.spec import TABLE2_WORKLOADS, ycsb


class UsageError(Exception):
    """Bad subcommand arguments; exits 2 like argparse's own errors."""


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RackBlox (SOSP 2023) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_rack_args(p) -> None:
        p.add_argument("--system", default="rackblox",
                       choices=[s.value for s in SystemType])
        p.add_argument("--workload", default="ycsb-50",
                       help="'ycsb-<write%%>' or a Table 2 name "
                            f"({', '.join(sorted(TABLE2_WORKLOADS))})")
        p.add_argument("--requests", type=int, default=2000)
        p.add_argument("--rate", type=float, default=1500.0)
        p.add_argument("--servers", type=int, default=4)
        p.add_argument("--pairs", type=int, default=4)
        p.add_argument("--device", default="pssd", choices=sorted(DEVICE_PROFILES))
        p.add_argument("--network", default="medium",
                       choices=sorted(NETWORK_PROFILES))
        p.add_argument("--seed", type=int, default=42)

    run_p = sub.add_parser("run", help="run one rack experiment")
    add_rack_args(run_p)

    chaos_p = sub.add_parser(
        "chaos", help="replay a fault-injection schedule under load"
    )
    add_rack_args(chaos_p)
    chaos_p.add_argument("--schedule", required=True, metavar="PATH",
                         help="fault schedule JSON "
                              "(see examples/crash_recover.json)")
    chaos_p.add_argument("--json", action="store_true",
                         help="emit the report as JSON instead of text")

    trace_p = sub.add_parser(
        "trace", help="run one rack experiment with request tracing"
    )
    add_rack_args(trace_p)
    trace_p.add_argument("--sample-rate", type=float, default=1.0,
                         help="head-sampling probability in (0,1] "
                              "(default: trace every request)")
    trace_p.add_argument("--trace-out", metavar="PATH",
                         help="write Chrome trace-event JSON here "
                              "(load in Perfetto / chrome://tracing)")
    trace_p.add_argument("--percentile", type=float, default=99.0,
                         help="tail percentile to attribute (default 99)")

    serve_p = sub.add_parser(
        "serve", help="serve a rack live over TCP (length-prefixed JSON)"
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=7337,
                         help="TCP port (0 picks a free one; default 7337)")
    serve_p.add_argument("--system", default="rackblox",
                         choices=[s.value for s in SystemType])
    serve_p.add_argument("--servers", type=int, default=2)
    serve_p.add_argument("--pairs", type=int, default=2)
    serve_p.add_argument("--device", default="pssd",
                         choices=sorted(DEVICE_PROFILES))
    serve_p.add_argument("--network", default="medium",
                         choices=sorted(NETWORK_PROFILES))
    serve_p.add_argument("--seed", type=int, default=42)
    serve_p.add_argument("--racks", type=int, default=1,
                         help="number of independent rack shards behind "
                              "one consistent-hash front-end (1 = the "
                              "plain single-rack service)")
    serve_p.add_argument("--read-policy", default="hash",
                         choices=["hash", "p2c"],
                         help="raw-read replica placement: hash pins "
                              "every read to its ring owner (the "
                              "default, byte-identical to older "
                              "servers); p2c races the two preference-"
                              "list replicas on queue depth x latency "
                              "EWMA and picks the cheaper (needs "
                              "--racks >= 2)")
    serve_p.add_argument("--shard-mode", default="inproc",
                         choices=["inproc", "process"],
                         help="inproc: all racks on one event loop "
                              "(deterministic, full semantics); process: "
                              "one backend serve process per rack behind "
                              "a relay proxy (scales across cores)")
    serve_p.add_argument("--workers", type=int, default=1,
                         help="per-core acceptors: N single-rack worker "
                              "processes sharing one port via "
                              "SO_REUSEPORT (the kernel balances "
                              "connections across them; each worker is "
                              "an independent rack simulator). Requires "
                              "--racks 1")
    serve_p.add_argument("--reuseport", action="store_true",
                         help="bind the listener with SO_REUSEPORT "
                              "(set automatically on --workers children)")
    serve_p.add_argument("--queue-depth", type=int, default=256,
                         help="global in-flight cap before BUSY shedding")
    serve_p.add_argument("--client-rate", type=float, default=0.0,
                         help="per-client token-bucket rate in req/s "
                              "(0 disables per-client metering)")
    serve_p.add_argument("--client-burst", type=float, default=64.0,
                         help="per-client token-bucket burst size")
    serve_p.add_argument("--tenants", metavar="SPEC", default=None,
                         help="multi-tenant QoS: a tenant spec as a JSON "
                              "file path or inline JSON (enables the "
                              "weighted-fair scheduler and the DRAM "
                              "read cache; see docs/serving.md)")
    serve_p.add_argument("--admission-queue-depth", type=int,
                         dest="queue_depth", default=argparse.SUPPRESS,
                         metavar="N",
                         help="(deprecated alias for --queue-depth)")
    serve_p.add_argument("--admission-client-rate", type=float,
                         dest="client_rate", default=argparse.SUPPRESS,
                         metavar="RPS",
                         help="(deprecated alias for --client-rate)")
    serve_p.add_argument("--admission-client-burst", type=float,
                         dest="client_burst", default=argparse.SUPPRESS,
                         metavar="N",
                         help="(deprecated alias for --client-burst)")
    serve_p.add_argument("--pace", type=float, default=0.0,
                         help="sim-time speed vs wall-clock (1.0 = real "
                              "time; 0 = free-running, the default)")
    serve_p.add_argument("--trace-sample-rate", type=float, default=0.0,
                         help="request-tracing head-sample rate in [0,1]")
    serve_p.add_argument("--chunk-us", type=float, default=1000.0,
                         help="simulated microseconds advanced per pump "
                              "chunk; larger chunks batch more responses "
                              "per socket write (default 1000)")
    serve_p.add_argument("--fault-schedule", metavar="PATH", default=None,
                         help="arm this fault-injection schedule JSON on "
                              "the served rack (chaos testing)")
    serve_p.add_argument("--request-timeout-us", type=float, default=None,
                         help="per-request simulated deadline; requests "
                              "stuck past it answer TIMEOUT (default 5s)")

    loadgen_p = sub.add_parser(
        "loadgen", help="drive a served rack with generated load"
    )
    loadgen_p.add_argument("--host", default="127.0.0.1")
    loadgen_p.add_argument("--port", type=int, default=7337)
    loadgen_p.add_argument("--mode", default="closed",
                           choices=["closed", "open"])
    loadgen_p.add_argument("--clients", type=int, default=32,
                           help="concurrent connections (default 32)")
    loadgen_p.add_argument("--requests", type=int, default=200,
                           help="requests per client (closed loop)")
    loadgen_p.add_argument("--pipeline", type=int, default=1,
                           help="outstanding requests per connection "
                                "(closed loop; default 1)")
    loadgen_p.add_argument("--duration", type=float, default=0.0,
                           help="run for this many seconds instead "
                                "(required for open loop)")
    loadgen_p.add_argument("--rate", type=float, default=5000.0,
                           help="aggregate req/s target (open loop)")
    loadgen_p.add_argument("--write-ratio", type=float, default=0.3)
    loadgen_p.add_argument("--kind", default="raw", choices=["raw", "kv"],
                           help="raw vSSD read/write or kvstore get/put")
    loadgen_p.add_argument("--pairs", type=int, default=2,
                           help="pair indices to target (match the server)")
    loadgen_p.add_argument("--keyspace", type=int, default=1024)
    loadgen_p.add_argument("--key-dist", default="uniform",
                           choices=["uniform", "zipf"],
                           help="key/pair popularity: uniform (default) "
                                "or seeded zipfian skew (rank-1 key "
                                "hottest)")
    loadgen_p.add_argument("--zipf-s", type=float, default=1.1,
                           help="zipfian skew exponent s > 0; larger "
                                "concentrates more load on the hottest "
                                "keys (default 1.1)")
    loadgen_p.add_argument("--seed", type=int, default=42)
    loadgen_p.add_argument("--retries", type=int, default=0,
                           help="re-send a request up to N times on "
                                "BUSY/TIMEOUT (default 0: fail fast)")
    loadgen_p.add_argument("--protocol", default="auto",
                           choices=["auto", "json", "bin"],
                           help="wire framing: auto negotiates via hello "
                                "and uses binary iff the server offers "
                                "it; json forces v1; bin fails if the "
                                "server cannot speak binary")
    loadgen_p.add_argument("--tenants", metavar="SPEC", default=None,
                           help="bind connections round-robin to these "
                                "tenants: comma-separated names, or the "
                                "same JSON spec (file path or inline) "
                                "the server's --tenants takes")

    fleet_p = sub.add_parser(
        "fleet", help="online fleet membership: add/drain racks, status"
    )
    fleet_p.add_argument("action", choices=["status", "add-rack",
                                            "drain-rack"])
    fleet_p.add_argument("--host", default="127.0.0.1")
    fleet_p.add_argument("--port", type=int, default=7337,
                         help="the fleet front-end (sharded serve or proxy)")
    fleet_p.add_argument("--rack", type=int, default=None,
                         help="rack index to drain (drain-rack)")
    fleet_p.add_argument("--backend-host", default="127.0.0.1",
                         help="new backend's host (proxy add-rack)")
    fleet_p.add_argument("--backend-port", type=int, default=None,
                         help="new backend's port (proxy add-rack: start "
                              "the serve process first, then hand its "
                              "address here)")
    fleet_p.add_argument("--batch-size", type=int, default=None,
                         help="keys per migration batch (default 64)")
    fleet_p.add_argument("--pause-ms", type=float, default=None,
                         help="pause between batches, milliseconds")
    fleet_p.add_argument("--attempts", type=int, default=None,
                         help="max migration attempts before abort")
    fleet_p.add_argument("--timeout", type=float, default=300.0,
                         help="seconds to wait for the cutover "
                              "(default 300)")
    fleet_p.add_argument("--json", action="store_true", dest="as_json",
                         help="print the raw response as JSON")

    figures_p = sub.add_parser("figures", help="reproduce paper figures")
    figures_p.add_argument("names", nargs="*",
                           help=f"subset of {sorted(ALL_FIGURES)} (default all)")
    figures_p.add_argument("--quick", action="store_true")
    figures_p.add_argument("--jobs", type=int, default=None, metavar="N",
                           help="fan independent rack runs out over N worker "
                                "processes (0 = all cores; default serial)")

    wear_p = sub.add_parser("wear", help="run the wear-leveling campaign")
    wear_p.add_argument("--servers", type=int, default=8)
    wear_p.add_argument("--ssds", type=int, default=16)
    wear_p.add_argument("--days", type=int, default=1095)
    wear_p.add_argument("--no-local", action="store_true")
    wear_p.add_argument("--no-global", action="store_true")
    wear_p.add_argument("--seed", type=int, default=3)

    compare_p = sub.add_parser(
        "compare", help="diff two saved figure runs (regression check)"
    )
    compare_p.add_argument("baseline", help="directory of baseline JSON figures")
    compare_p.add_argument("candidate", help="directory of candidate JSON figures")
    compare_p.add_argument("--tolerance", type=float, default=0.25,
                           help="allowed relative drift (default 0.25)")

    sub.add_parser("list", help="list systems, workloads, and figures")
    return parser


def _require(condition: bool, message: str) -> None:
    """Uniform usage validation: falsy condition -> exit 2 with message."""
    if not condition:
        raise UsageError(message)


def _resolve_workload(name: str):
    if name in TABLE2_WORKLOADS:
        return TABLE2_WORKLOADS[name]
    if name.startswith("ycsb-"):
        try:
            ratio = float(name.split("-", 1)[1]) / 100.0
        except ValueError:
            raise UsageError(f"bad YCSB spec {name!r}; use e.g. ycsb-50")
        return ycsb(ratio)
    raise UsageError(
        f"unknown workload {name!r}; use ycsb-<write%> or one of "
        f"{sorted(TABLE2_WORKLOADS)}"
    )


def _validate_rack_args(args) -> None:
    _require(args.requests > 0, f"--requests must be > 0, got {args.requests}")
    _require(args.rate > 0, f"--rate must be > 0, got {args.rate}")
    _require(args.servers >= 2, f"--servers must be >= 2, got {args.servers}")
    _require(args.pairs >= 1, f"--pairs must be >= 1, got {args.pairs}")


def _cmd_run(args, trace_sample_rate: float = 0.0) -> int:
    _validate_rack_args(args)
    workload = _resolve_workload(args.workload)
    config = RackConfig(
        system=SystemType(args.system),
        num_servers=args.servers,
        num_pairs=args.pairs,
        device_profile=profile_by_name(args.device),
        network_profile=net_profile_by_name(args.network),
        seed=args.seed,
        trace_sample_rate=trace_sample_rate,
    )
    result = run_rack_experiment(
        config, workload, requests_per_pair=args.requests,
        rate_iops_per_pair=args.rate,
    )
    print(f"system={args.system} workload={workload.name} "
          f"device={args.device} network={args.network}")
    for key, value in sorted(result.summary().items()):
        print(f"  {key:24s} {value:12.1f}")
    for key, value in sorted(result.switch_counters.items()):
        print(f"  switch.{key:17s} {value:12d}")
    if trace_sample_rate > 0.0 and result.traces is not None:
        _report_traces(args, result.traces)
    return 0


def _cmd_chaos(args) -> int:
    import json as json_mod

    from repro.chaos.runner import run_chaos_experiment
    from repro.chaos.schedule import FaultSchedule

    _validate_rack_args(args)
    workload = _resolve_workload(args.workload)
    try:
        schedule = FaultSchedule.from_json_file(args.schedule)
    except ReproError as exc:
        raise UsageError(f"cannot load schedule {args.schedule!r}: {exc}")
    config = RackConfig(
        system=SystemType(args.system),
        num_servers=args.servers,
        num_pairs=args.pairs,
        device_profile=profile_by_name(args.device),
        network_profile=net_profile_by_name(args.network),
        seed=args.seed,
        fault_schedule=schedule,
    )
    _result, report = run_chaos_experiment(
        config, workload, requests_per_pair=args.requests,
        rate_iops_per_pair=args.rate,
    )
    if args.json:
        print(json_mod.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(f"system={args.system} workload={workload.name} "
              f"schedule={args.schedule} seed={args.seed}")
        print(report.describe())
    return 0 if report.clean else 1


def _report_traces(args, traces) -> None:
    from repro.trace.chrome import write_chrome_trace

    print()
    print(traces.attribution(percentile=args.percentile, kind="read").describe())
    writes = traces.of_kind("write")
    if writes:
        print()
        print(traces.attribution(percentile=args.percentile, kind="write").describe())
    if args.trace_out:
        events = write_chrome_trace(traces.traces, args.trace_out)
        print(f"\nwrote {events} trace events ({len(traces)} requests) "
              f"to {args.trace_out}")


def _load_qos(args):
    """Build the (QosScheduler, ReadCache) pair from ``--tenants``.

    Returns ``(None, None)`` when no spec was given -- the served stack
    then runs exactly the pre-tenancy code paths.  A malformed spec is
    a usage error: it fails at startup, not at request time.
    """
    if getattr(args, "tenants", None) is None:
        return None, None
    from repro.service.qos import (
        QosScheduler,
        TenantSpecError,
        load_tenant_specs,
    )
    from repro.service.readcache import ReadCache

    try:
        spec = load_tenant_specs(args.tenants)
    except TenantSpecError as exc:
        raise UsageError(f"bad --tenants spec: {exc}")
    qos = QosScheduler(spec.tenants, max_queue_depth=args.queue_depth)
    cache = ReadCache(spec.cache_capacity, shares=qos.cache_shares(),
                      segments=spec.cache_segments)
    return qos, cache


def _cmd_serve(args) -> int:
    import asyncio
    import socket

    from repro.service.admission import AdmissionController
    from repro.service.server import RackService

    _require(args.servers >= 2, f"--servers must be >= 2, got {args.servers}")
    _require(args.pairs >= 1, f"--pairs must be >= 1, got {args.pairs}")
    _require(args.racks >= 1, f"--racks must be >= 1, got {args.racks}")
    _require(args.shard_mode == "inproc" or args.fault_schedule is None,
             "--fault-schedule requires --shard-mode inproc (backend "
             "processes cannot share one schedule deterministically)")
    _require(args.workers >= 1, f"--workers must be >= 1, got {args.workers}")
    _require(args.workers == 1 or args.racks == 1,
             "--workers > 1 requires --racks 1 (per-core acceptors "
             "multiply one rack; shard with --racks instead)")
    _require(args.workers == 1 or args.fault_schedule is None,
             "--fault-schedule requires --workers 1 (workers cannot "
             "share one schedule deterministically)")
    _require((args.workers == 1 and not args.reuseport)
             or hasattr(socket, "SO_REUSEPORT"),
             "--workers / --reuseport need SO_REUSEPORT, which this "
             "platform does not provide")
    _require(not args.reuseport or args.racks == 1,
             "--reuseport applies to the single-rack service only")
    _require(args.queue_depth >= 1,
             f"--queue-depth must be >= 1, got {args.queue_depth}")
    _require(args.client_rate >= 0,
             f"--client-rate must be >= 0, got {args.client_rate}")
    _require(args.pace >= 0, f"--pace must be >= 0, got {args.pace}")
    _require(args.chunk_us > 0, f"--chunk-us must be > 0, got {args.chunk_us}")
    _require(0.0 <= args.trace_sample_rate <= 1.0,
             "--trace-sample-rate must be in [0,1], "
             f"got {args.trace_sample_rate}")
    _require(args.request_timeout_us is None or args.request_timeout_us > 0,
             "--request-timeout-us must be > 0, "
             f"got {args.request_timeout_us}")
    _require(args.read_policy == "hash" or args.racks >= 2,
             "--read-policy p2c needs --racks >= 2 (one rack has no "
             "second replica to race)")
    fault_schedule = None
    if args.fault_schedule is not None:
        from repro.chaos.schedule import FaultSchedule

        try:
            fault_schedule = FaultSchedule.from_json_file(args.fault_schedule)
        except ReproError as exc:
            raise UsageError(
                f"cannot load schedule {args.fault_schedule!r}: {exc}"
            )
    config = RackConfig(
        system=SystemType(args.system),
        num_servers=args.servers,
        num_pairs=args.pairs,
        device_profile=profile_by_name(args.device),
        network_profile=net_profile_by_name(args.network),
        seed=args.seed,
        trace_sample_rate=args.trace_sample_rate,
        fault_schedule=fault_schedule,
    )
    if args.racks > 1 and args.shard_mode == "process":
        return _serve_proxy(args)
    if args.workers > 1:
        return _serve_percore(args)

    qos, read_cache = _load_qos(args)
    if args.racks == 1:
        # The single-rack special case: exactly the unsharded service.
        service = RackService(
            config, host=args.host, port=args.port,
            admission=AdmissionController(
                max_queue_depth=args.queue_depth,
                client_rate_per_sec=args.client_rate,
                client_burst=args.client_burst,
            ),
            pace=args.pace,
            chunk_us=args.chunk_us,
            request_timeout_us=args.request_timeout_us,
            reuse_port=args.reuseport,
            qos=qos,
            read_cache=read_cache,
        )
        label = f"{args.system} rack"
    else:
        from repro.service.router import ShardedRackService, ShardRouter

        bridge_kwargs = dict(pace=args.pace, chunk_us=args.chunk_us)
        if args.request_timeout_us is not None:
            bridge_kwargs["request_timeout_us"] = args.request_timeout_us
        router = ShardRouter.from_config(
            config, args.racks,
            read_policy=args.read_policy,
            queue_depth=args.queue_depth,
            client_rate_per_sec=args.client_rate,
            client_burst=args.client_burst,
            **bridge_kwargs,
        )
        service = ShardedRackService(router, host=args.host, port=args.port,
                                     qos=qos, read_cache=read_cache)
        label = f"{args.system} rack x{args.racks}"
        if args.read_policy != "hash":
            label += f" [{args.read_policy} reads]"
    if qos is not None:
        label += " [qos]"

    async def serve() -> None:
        import signal

        await service.start()
        print(f"serving {label} "
              f"({args.pairs} pairs / {args.servers} servers) "
              f"on {service.host}:{service.port}", flush=True)
        stopping = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stopping.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await stopping.wait()
        print("draining in-flight requests...", flush=True)
        await service.stop()
        stats = service.bridge.stats()
        print(f"served {stats.completed} requests "
              f"({stats.timed_out} timed out) over "
              f"{stats.sim_now_us / 1e6:.3f} simulated seconds", flush=True)

    asyncio.run(serve())
    return 0


def _serve_proxy(args) -> int:
    """``serve --racks N --shard-mode process``: one backend serve
    process per rack behind a frame-relay proxy (scales across cores)."""
    import asyncio

    from repro.service.router import (
        ShardProxy,
        launch_backends,
        shutdown_backends,
    )

    backend_args = [
        "--racks", "1",
        "--system", args.system,
        "--servers", str(args.servers),
        "--pairs", str(args.pairs),
        "--device", args.device,
        "--network", args.network,
        "--queue-depth", str(args.queue_depth),
        "--client-rate", str(args.client_rate),
        "--client-burst", str(args.client_burst),
        "--pace", str(args.pace),
        "--chunk-us", str(args.chunk_us),
        "--trace-sample-rate", str(args.trace_sample_rate),
    ]
    if args.request_timeout_us is not None:
        backend_args += ["--request-timeout-us", str(args.request_timeout_us)]

    # Tenancy lives at the proxy front-end: the relay schedules and
    # caches per tenant while the backend racks keep plain admission
    # (a backend never sees --tenants).
    qos, read_cache = _load_qos(args)

    async def serve() -> None:
        import signal

        procs, endpoints = await launch_backends(
            args.racks, backend_args, seed=args.seed
        )
        proxy = ShardProxy(endpoints, host=args.host, port=args.port,
                           pairs_per_rack=args.pairs,
                           read_policy=args.read_policy,
                           qos=qos, read_cache=read_cache)
        try:
            await proxy.start()
            label = f"{args.system} rack x{args.racks}"
            if args.read_policy != "hash":
                label += f" [{args.read_policy} reads]"
            if qos is not None:
                label += " [qos]"
            print(f"serving {label} "
                  f"({args.pairs} pairs / {args.servers} servers, "
                  f"process shards) "
                  f"on {proxy.host}:{proxy.port}", flush=True)
            stopping = asyncio.Event()
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, stopping.set)
                except NotImplementedError:  # pragma: no cover - non-POSIX
                    pass
            await stopping.wait()
            print("draining in-flight requests...", flush=True)
            await proxy.stop()
        finally:
            await shutdown_backends(procs)
        print(f"served {proxy.routed} requests "
              f"(relayed across {args.racks} racks)", flush=True)

    asyncio.run(serve())
    return 0


def _serve_percore(args) -> int:
    """``serve --workers N``: N single-rack worker processes sharing one
    port via SO_REUSEPORT -- the kernel spreads incoming connections
    across them, so each acceptor (and its rack simulator) owns a core.

    Workers are independent simulators (seeds ``seed + worker``): any
    one connection sees one consistent rack, but state is not shared
    across workers -- the per-core mode is a throughput fan-out, like N
    racks behind one VIP, not a coherent single rack.
    """
    import asyncio
    import socket

    from repro.service.router import launch_backends, shutdown_backends

    worker_args = [
        "--racks", "1",
        "--workers", "1",
        "--reuseport",
        "--host", args.host,
        "--system", args.system,
        "--servers", str(args.servers),
        "--pairs", str(args.pairs),
        "--device", args.device,
        "--network", args.network,
        "--queue-depth", str(args.queue_depth),
        "--client-rate", str(args.client_rate),
        "--client-burst", str(args.client_burst),
        "--pace", str(args.pace),
        "--chunk-us", str(args.chunk_us),
        "--trace-sample-rate", str(args.trace_sample_rate),
    ]
    if args.request_timeout_us is not None:
        worker_args += ["--request-timeout-us", str(args.request_timeout_us)]
    if args.tenants is not None:
        # Validate up front (exit 2 here, not in N children), then let
        # each worker build its own scheduler/cache from the same spec.
        _load_qos(args)
        worker_args += ["--tenants", args.tenants]

    async def serve() -> None:
        import signal

        # Reserve the shared port before any worker exists: a bound
        # (never listening) SO_REUSEPORT probe socket holds the number,
        # the workers bind beside it, and connections only ever land on
        # listening sockets -- so there is no startup race and no
        # ephemeral-port guessing.
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            probe.bind((args.host, args.port))
            port = probe.getsockname()[1]
            procs, _endpoints = await launch_backends(
                args.workers, worker_args, seed=args.seed, port=port,
            )
        finally:
            probe.close()
        try:
            print(f"serving {args.system} rack "
                  f"({args.pairs} pairs / {args.servers} servers, "
                  f"{args.workers} per-core workers) "
                  f"on {args.host}:{port}", flush=True)
            stopping = asyncio.Event()
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, stopping.set)
                except NotImplementedError:  # pragma: no cover - non-POSIX
                    pass
            await stopping.wait()
            print("draining in-flight requests...", flush=True)
        finally:
            await shutdown_backends(procs)
        print(f"stopped {args.workers} per-core workers", flush=True)

    asyncio.run(serve())
    return 0


def _loadgen_tenants(source: str) -> List[str]:
    """``--tenants`` for loadgen: names, or the server's spec format.

    Inline JSON / an existing file goes through the real spec parser
    (so the same file can configure both ends); anything else is a
    comma-separated name list.
    """
    import os

    from repro.service.qos import TenantSpecError, load_tenant_specs

    if source.lstrip().startswith(("{", "[")) or os.path.exists(source):
        try:
            spec = load_tenant_specs(source)
        except TenantSpecError as exc:
            raise UsageError(f"bad --tenants spec: {exc}")
        _require(bool(spec.tenants), "--tenants spec declares no tenants")
        return list(spec.tenants)
    names = [name.strip() for name in source.split(",")]
    _require(all(names), f"--tenants has an empty name in {source!r}")
    return names


def _cmd_loadgen(args) -> int:
    import asyncio

    from repro.service.loadgen import run_loadgen

    _require(args.clients >= 1, f"--clients must be >= 1, got {args.clients}")
    _require(args.requests >= 1 or args.duration > 0,
             "need --requests >= 1 or --duration > 0")
    _require(0.0 <= args.write_ratio <= 1.0,
             f"--write-ratio must be in [0,1], got {args.write_ratio}")
    _require(args.mode != "open" or args.duration > 0,
             "open-loop mode needs --duration > 0")
    _require(args.rate > 0, f"--rate must be > 0, got {args.rate}")
    _require(args.pairs >= 1, f"--pairs must be >= 1, got {args.pairs}")
    _require(args.keyspace >= 1,
             f"--keyspace must be >= 1, got {args.keyspace}")
    _require(args.pipeline >= 1,
             f"--pipeline must be >= 1, got {args.pipeline}")
    _require(args.retries >= 0,
             f"--retries must be >= 0, got {args.retries}")
    _require(args.zipf_s > 0,
             f"--zipf-s must be > 0, got {args.zipf_s}")
    tenants = _loadgen_tenants(args.tenants) if args.tenants else None
    try:
        report = asyncio.run(run_loadgen(
            args.host, args.port,
            mode=args.mode, clients=args.clients,
            requests_per_client=args.requests, duration_s=args.duration,
            pipeline=args.pipeline,
            rate_rps=args.rate, write_ratio=args.write_ratio,
            kind=args.kind, pairs=args.pairs, keyspace=args.keyspace,
            key_dist=args.key_dist, zipf_s=args.zipf_s,
            seed=args.seed, retries=args.retries,
            wire_protocol=args.protocol,
            tenants=tenants,
        ))
    except OSError as exc:
        print(f"repro loadgen: cannot reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    print(report.describe())
    return 0 if report.ok > 0 and report.errors == 0 else 1


def _cmd_fleet(args) -> int:
    import asyncio
    import json as json_mod

    from repro.service.client import ClientConfig, ServiceClient, ServiceError

    _require(args.action != "drain-rack" or args.rack is not None,
             "drain-rack needs --rack")
    _require(args.timeout > 0, f"--timeout must be > 0, got {args.timeout}")
    options = {}
    if args.batch_size is not None:
        _require(args.batch_size >= 1,
                 f"--batch-size must be >= 1, got {args.batch_size}")
        options["batch_size"] = args.batch_size
    if args.pause_ms is not None:
        _require(args.pause_ms >= 0,
                 f"--pause-ms must be >= 0, got {args.pause_ms}")
        options["pause_s"] = args.pause_ms / 1000.0
    if args.attempts is not None:
        _require(args.attempts >= 1,
                 f"--attempts must be >= 1, got {args.attempts}")
        options["max_attempts"] = args.attempts

    async def _go():
        client = ServiceClient(
            args.host, args.port, "fleet-cli",
            config=ClientConfig(request_timeout_s=args.timeout),
        )
        await client.connect()
        try:
            if args.action == "status":
                return await client.fleet_status()
            if args.action == "add-rack":
                if args.backend_port is not None:
                    options["host"] = args.backend_host
                    options["port"] = args.backend_port
                return await client.fleet_add_rack(**options)
            return await client.fleet_drain_rack(args.rack, **options)
        finally:
            await client.close()

    try:
        response = asyncio.run(_go())
    except (ConnectionError, OSError) as exc:
        print(f"repro fleet: cannot reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    except asyncio.TimeoutError:
        print(f"repro fleet: {args.action} did not finish within "
              f"{args.timeout:.0f}s", file=sys.stderr)
        return 1
    except ServiceError as exc:
        print(f"repro fleet: {args.action} failed: {exc}", file=sys.stderr)
        return 1
    body = {k: v for k, v in response.items()
            if k not in ("ok", "id", "v")}
    if args.as_json:
        print(json_mod.dumps(body, indent=2, sort_keys=True))
        return 0
    if args.action == "status":
        racks = body.get("racks", [])
        print(f"epoch {body.get('epoch')}  racks {racks}  "
              f"migrating {body.get('migrating')}  "
              f"phase {body.get('phase')}")
        change = body.get("change")
        if change:
            print(f"  in flight: {change.get('kind')} rack "
                  f"{change.get('rack')} attempt {change.get('attempt')}"
                  + (" (tainted)" if change.get("tainted") else ""))
        counters = body.get("counters", {})
        if counters:
            moved = counters.get("keys_moved", 0)
            print(f"  lifetime: keys_moved {moved:.0f}  "
                  f"cutovers {counters.get('cutovers', 0):.0f}  "
                  f"aborts {counters.get('aborts', 0):.0f}")
        return 0
    print(f"{body.get('kind')} rack {body.get('rack')}: epoch "
          f"{body.get('epoch')}  keys_moved {body.get('keys_moved')}  "
          f"moved_fraction {body.get('moved_fraction')}  "
          f"attempts {body.get('attempts')}  racks {body.get('racks')}")
    return 0


def _cmd_wear(args) -> int:
    _require(args.servers >= 1, f"--servers must be >= 1, got {args.servers}")
    _require(args.ssds >= 1, f"--ssds must be >= 1, got {args.ssds}")
    _require(args.days >= 1, f"--days must be >= 1, got {args.days}")
    sim = WearSimulation(
        num_servers=args.servers,
        ssds_per_server=args.ssds,
        enable_local=not args.no_local,
        enable_global=not args.no_global,
        seed=args.seed,
    )
    result = sim.run(days=args.days)
    print(f"{args.servers} servers x {args.ssds} SSDs over {args.days} days")
    print(f"  worst server lambda   {result.final_server_imbalance():10.2f}")
    print(f"  mean server lambda    {result.mean_final_server_imbalance():10.2f}")
    print(f"  rack wear variance    {result.final_rack_variance():10.1f}")
    print(f"  local / global swaps  {result.local_swaps:6d} / "
          f"{result.global_swaps}")
    return 0


def _cmd_list() -> int:
    print("systems:   " + ", ".join(s.value for s in SystemType))
    print("workloads: ycsb-<write%>, " + ", ".join(sorted(TABLE2_WORKLOADS)))
    print("devices:   " + ", ".join(sorted(DEVICE_PROFILES)))
    print("networks:  " + ", ".join(sorted(NETWORK_PROFILES)))
    print("figures:   " + ", ".join(sorted(ALL_FIGURES)))
    return 0


def _cmd_compare(args) -> int:
    from repro.experiments.regression import compare_runs
    from repro.experiments.results_io import load_figures

    _require(args.tolerance > 0,
             f"--tolerance must be > 0, got {args.tolerance}")
    try:
        baseline = load_figures(args.baseline)
        candidate = load_figures(args.candidate)
    except (OSError, ValueError) as exc:
        raise UsageError(f"cannot load figures: {exc}")
    report = compare_runs(baseline, candidate, tolerance=args.tolerance)
    print(report.describe())
    return 0 if report.clean else 1


def _dispatch(args) -> int:
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "trace":
        _require(0.0 < args.sample_rate <= 1.0,
                 f"--sample-rate must be in (0, 1], got {args.sample_rate}")
        return _cmd_run(args, trace_sample_rate=args.sample_rate)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "figures":
        _require(args.jobs is None or args.jobs >= 0,
                 f"--jobs must be >= 0, got {args.jobs}")
        unknown = [n for n in args.names if n not in ALL_FIGURES]
        _require(not unknown,
                 f"unknown figure(s) {unknown}; choose from "
                 f"{sorted(ALL_FIGURES)}")
        run_figures(args.names or None, quick=args.quick, jobs=args.jobs)
        return 0
    if args.command == "wear":
        return _cmd_wear(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "list":
        return _cmd_list()
    raise UsageError(f"unknown command {args.command!r}")  # pragma: no cover


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: parse arguments and dispatch to a subcommand.

    Returns 0 on success, 1 on runtime failure, 2 on usage errors.
    """
    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except UsageError as exc:
        print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"repro {args.command}: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 1
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
