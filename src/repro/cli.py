"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

* ``run`` -- one rack experiment with chosen system/workload parameters;
* ``trace`` -- a traced rack run: per-stage spans, tail-latency
  attribution, optional Chrome trace-event (Perfetto) export;
* ``figures`` -- reproduce paper figures (same as
  ``python -m repro.experiments.report``);
* ``wear`` -- the long-horizon wear-leveling campaign;
* ``list`` -- enumerate available systems, workloads, and figures.
"""

import argparse
from typing import List, Optional

from repro.cluster.config import RackConfig, SystemType
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.report import run_figures
from repro.experiments.runner import run_rack_experiment
from repro.flash.timing import DEVICE_PROFILES, profile_by_name
from repro.net.latency import NETWORK_PROFILES
from repro.net.latency import profile_by_name as net_profile_by_name
from repro.wear.simulate import WearSimulation
from repro.workloads.spec import TABLE2_WORKLOADS, ycsb


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RackBlox (SOSP 2023) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_rack_args(p) -> None:
        p.add_argument("--system", default="rackblox",
                       choices=[s.value for s in SystemType])
        p.add_argument("--workload", default="ycsb-50",
                       help="'ycsb-<write%%>' or a Table 2 name "
                            f"({', '.join(sorted(TABLE2_WORKLOADS))})")
        p.add_argument("--requests", type=int, default=2000)
        p.add_argument("--rate", type=float, default=1500.0)
        p.add_argument("--servers", type=int, default=4)
        p.add_argument("--pairs", type=int, default=4)
        p.add_argument("--device", default="pssd", choices=sorted(DEVICE_PROFILES))
        p.add_argument("--network", default="medium",
                       choices=sorted(NETWORK_PROFILES))
        p.add_argument("--seed", type=int, default=42)

    run_p = sub.add_parser("run", help="run one rack experiment")
    add_rack_args(run_p)

    trace_p = sub.add_parser(
        "trace", help="run one rack experiment with request tracing"
    )
    add_rack_args(trace_p)
    trace_p.add_argument("--sample-rate", type=float, default=1.0,
                         help="head-sampling probability in (0,1] "
                              "(default: trace every request)")
    trace_p.add_argument("--trace-out", metavar="PATH",
                         help="write Chrome trace-event JSON here "
                              "(load in Perfetto / chrome://tracing)")
    trace_p.add_argument("--percentile", type=float, default=99.0,
                         help="tail percentile to attribute (default 99)")

    figures_p = sub.add_parser("figures", help="reproduce paper figures")
    figures_p.add_argument("names", nargs="*",
                           help=f"subset of {sorted(ALL_FIGURES)} (default all)")
    figures_p.add_argument("--quick", action="store_true")
    figures_p.add_argument("--jobs", type=int, default=None, metavar="N",
                           help="fan independent rack runs out over N worker "
                                "processes (0 = all cores; default serial)")

    wear_p = sub.add_parser("wear", help="run the wear-leveling campaign")
    wear_p.add_argument("--servers", type=int, default=8)
    wear_p.add_argument("--ssds", type=int, default=16)
    wear_p.add_argument("--days", type=int, default=1095)
    wear_p.add_argument("--no-local", action="store_true")
    wear_p.add_argument("--no-global", action="store_true")
    wear_p.add_argument("--seed", type=int, default=3)

    compare_p = sub.add_parser(
        "compare", help="diff two saved figure runs (regression check)"
    )
    compare_p.add_argument("baseline", help="directory of baseline JSON figures")
    compare_p.add_argument("candidate", help="directory of candidate JSON figures")
    compare_p.add_argument("--tolerance", type=float, default=0.25,
                           help="allowed relative drift (default 0.25)")

    sub.add_parser("list", help="list systems, workloads, and figures")
    return parser


def _resolve_workload(name: str):
    if name in TABLE2_WORKLOADS:
        return TABLE2_WORKLOADS[name]
    if name.startswith("ycsb-"):
        try:
            ratio = float(name.split("-", 1)[1]) / 100.0
        except ValueError:
            raise SystemExit(f"bad YCSB spec {name!r}; use e.g. ycsb-50")
        return ycsb(ratio)
    raise SystemExit(
        f"unknown workload {name!r}; use ycsb-<write%> or one of "
        f"{sorted(TABLE2_WORKLOADS)}"
    )


def _cmd_run(args, trace_sample_rate: float = 0.0) -> int:
    workload = _resolve_workload(args.workload)
    config = RackConfig(
        system=SystemType(args.system),
        num_servers=args.servers,
        num_pairs=args.pairs,
        device_profile=profile_by_name(args.device),
        network_profile=net_profile_by_name(args.network),
        seed=args.seed,
        trace_sample_rate=trace_sample_rate,
    )
    result = run_rack_experiment(
        config, workload, requests_per_pair=args.requests,
        rate_iops_per_pair=args.rate,
    )
    print(f"system={args.system} workload={workload.name} "
          f"device={args.device} network={args.network}")
    for key, value in sorted(result.summary().items()):
        print(f"  {key:24s} {value:12.1f}")
    for key, value in sorted(result.switch_counters.items()):
        print(f"  switch.{key:17s} {value:12d}")
    if trace_sample_rate > 0.0 and result.traces is not None:
        _report_traces(args, result.traces)
    return 0


def _report_traces(args, traces) -> None:
    from repro.trace.chrome import write_chrome_trace

    print()
    print(traces.attribution(percentile=args.percentile, kind="read").describe())
    writes = traces.of_kind("write")
    if writes:
        print()
        print(traces.attribution(percentile=args.percentile, kind="write").describe())
    if args.trace_out:
        events = write_chrome_trace(traces.traces, args.trace_out)
        print(f"\nwrote {events} trace events ({len(traces)} requests) "
              f"to {args.trace_out}")


def _cmd_wear(args) -> int:
    sim = WearSimulation(
        num_servers=args.servers,
        ssds_per_server=args.ssds,
        enable_local=not args.no_local,
        enable_global=not args.no_global,
        seed=args.seed,
    )
    result = sim.run(days=args.days)
    print(f"{args.servers} servers x {args.ssds} SSDs over {args.days} days")
    print(f"  worst server lambda   {result.final_server_imbalance():10.2f}")
    print(f"  mean server lambda    {result.mean_final_server_imbalance():10.2f}")
    print(f"  rack wear variance    {result.final_rack_variance():10.1f}")
    print(f"  local / global swaps  {result.local_swaps:6d} / "
          f"{result.global_swaps}")
    return 0


def _cmd_list() -> int:
    print("systems:   " + ", ".join(s.value for s in SystemType))
    print("workloads: ycsb-<write%>, " + ", ".join(sorted(TABLE2_WORKLOADS)))
    print("devices:   " + ", ".join(sorted(DEVICE_PROFILES)))
    print("networks:  " + ", ".join(sorted(NETWORK_PROFILES)))
    print("figures:   " + ", ".join(sorted(ALL_FIGURES)))
    return 0


def _cmd_compare(args) -> int:
    from repro.experiments.regression import compare_runs
    from repro.experiments.results_io import load_figures

    report = compare_runs(
        load_figures(args.baseline),
        load_figures(args.candidate),
        tolerance=args.tolerance,
    )
    print(report.describe())
    return 0 if report.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: parse arguments and dispatch to a subcommand."""
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "trace":
        if not 0.0 < args.sample_rate <= 1.0:
            raise SystemExit(
                f"--sample-rate must be in (0, 1], got {args.sample_rate}"
            )
        return _cmd_run(args, trace_sample_rate=args.sample_rate)
    if args.command == "figures":
        if args.jobs is not None and args.jobs < 0:
            raise SystemExit(f"--jobs must be >= 0, got {args.jobs}")
        run_figures(args.names or None, quick=args.quick, jobs=args.jobs)
        return 0
    if args.command == "wear":
        return _cmd_wear(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "list":
        return _cmd_list()
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    raise SystemExit(main())
