"""Terminal-friendly charts for experiment output.

The figure report is text; these helpers make the shapes visible without
a plotting stack: horizontal bar charts for grouped comparisons (the
Figure 9 style) and log-scaled CDF curves (the Figure 16 style).
"""

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

BAR_CHAR = "#"


def bar_chart(
    items: Sequence[Tuple[str, float]],
    width: int = 50,
    unit: str = "",
    title: str = "",
) -> str:
    """Horizontal bars, scaled to the longest value.

    >>> print(bar_chart([("a", 10.0), ("b", 20.0)], width=10))
    a  #####       10.0
    b  ##########  20.0
    """
    if not items:
        raise ConfigError("bar chart needs at least one item")
    if width < 2:
        raise ConfigError("width must be >= 2")
    if any(value < 0 for _, value in items):
        raise ConfigError("bar values must be >= 0")
    peak = max(value for _, value in items) or 1.0
    label_width = max(len(label) for label, _ in items)
    lines = [title] if title else []
    for label, value in items:
        bar = BAR_CHAR * max(1 if value > 0 else 0, round(value / peak * width))
        lines.append(
            f"{label.ljust(label_width)}  {bar.ljust(width)}  "
            f"{value:.1f}{unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[Tuple[str, Dict[str, float]]],
    series_order: Optional[List[str]] = None,
    width: int = 40,
    unit: str = "",
    title: str = "",
) -> str:
    """Bars grouped under row headers (one group per sweep point)."""
    if not groups:
        raise ConfigError("need at least one group")
    if series_order is None:
        series_order = list(groups[0][1])
    flat = [
        value
        for _, series in groups
        for key, value in series.items()
        if value is not None
    ]
    if not flat:
        raise ConfigError("no values to chart")
    peak = max(flat) or 1.0
    label_width = max(len(name) for name in series_order)
    lines = [title] if title else []
    for group_label, series in groups:
        lines.append(f"{group_label}:")
        for name in series_order:
            value = series.get(name)
            if value is None:
                lines.append(f"  {name.ljust(label_width)}  (no data)")
                continue
            bar = BAR_CHAR * max(1, round(value / peak * width))
            lines.append(
                f"  {name.ljust(label_width)}  {bar.ljust(width)} "
                f"{value:.1f}{unit}"
            )
    return "\n".join(lines)


def cdf_chart(
    curves: Dict[str, Sequence[float]],
    quantiles: Sequence[float] = (50.0, 90.0, 95.0, 99.0, 99.9),
    width: int = 48,
    title: str = "",
) -> str:
    """Quantile ladder on a log-latency axis, one row per (q, series).

    Each row places a marker proportional to log(latency), so curve
    separation in the tail is visible at a glance.
    """
    from repro.metrics.percentiles import percentile

    if not curves:
        raise ConfigError("need at least one curve")
    if any(not values for values in curves.values()):
        raise ConfigError("every curve needs samples")
    points = {
        name: [percentile(values, q) for q in quantiles]
        for name, values in curves.items()
    }
    lo = min(min(vals) for vals in points.values())
    hi = max(max(vals) for vals in points.values())
    lo = max(lo, 1e-6)
    span = math.log10(hi / lo) if hi > lo else 1.0
    name_width = max(len(name) for name in curves)
    lines = [title] if title else []
    for qi, q in enumerate(quantiles):
        lines.append(f"P{q}:")
        for name in curves:
            value = points[name][qi]
            pos = int(round(math.log10(max(value, lo) / lo) / span * (width - 1)))
            row = [" "] * width
            row[min(pos, width - 1)] = "*"
            lines.append(
                f"  {name.ljust(name_width)} |{''.join(row)}| {value:.0f}us"
            )
    return "\n".join(lines)
