"""A log-bucketed latency histogram (HdrHistogram-style).

The exact recorders in :mod:`repro.metrics.percentiles` keep every sample,
which is right for experiment-scale runs; long soak runs want bounded
memory.  :class:`LogHistogram` trades a bounded relative error (one bucket
width) for O(1) memory, like production latency-tracking systems.
"""

import math
from typing import Iterator, List, Tuple

from repro.errors import ConfigError


class LogHistogram:
    """Fixed relative-precision histogram over (0, max_value_us]."""

    def __init__(
        self,
        min_value_us: float = 1.0,
        max_value_us: float = 60_000_000.0,
        buckets_per_decade: int = 32,
    ) -> None:
        if min_value_us <= 0 or max_value_us <= min_value_us:
            raise ConfigError("need 0 < min_value < max_value")
        if buckets_per_decade < 1:
            raise ConfigError("buckets_per_decade must be >= 1")
        self.min_value_us = min_value_us
        self.max_value_us = max_value_us
        self.buckets_per_decade = buckets_per_decade
        decades = math.log10(max_value_us / min_value_us)
        self._bucket_count = int(math.ceil(decades * buckets_per_decade)) + 1
        self._counts: List[int] = [0] * self._bucket_count
        self._underflow = 0
        self._overflow = 0
        self.total = 0
        self._sum = 0.0
        self._max_seen = 0.0

    def _index_of(self, value: float) -> int:
        return int(
            math.log10(value / self.min_value_us) * self.buckets_per_decade
        )

    def _bucket_lower(self, index: int) -> float:
        return self.min_value_us * 10.0 ** (index / self.buckets_per_decade)

    def record(self, value_us: float) -> None:
        if value_us < 0:
            raise ConfigError(f"negative latency {value_us}")
        self.total += 1
        self._sum += value_us
        if value_us > self._max_seen:
            self._max_seen = value_us
        if value_us < self.min_value_us:
            self._underflow += 1
            return
        if value_us > self.max_value_us:
            self._overflow += 1
            return
        index = min(self._index_of(value_us), self._bucket_count - 1)
        self._counts[index] += 1

    def mean(self) -> float:
        if self.total == 0:
            raise ConfigError("no samples recorded")
        return self._sum / self.total

    def max(self) -> float:
        if self.total == 0:
            raise ConfigError("no samples recorded")
        return self._max_seen

    def percentile(self, q: float) -> float:
        """Approximate percentile: the lower edge of the matching bucket.

        Underflow counts as ``min_value_us``; overflow as the recorded max.
        """
        if not 0.0 <= q <= 100.0:
            raise ConfigError(f"q must be in [0,100], got {q}")
        if self.total == 0:
            raise ConfigError("no samples recorded")
        target = q / 100.0 * self.total
        running = self._underflow
        if running >= target and self._underflow:
            return self.min_value_us
        for index, count in enumerate(self._counts):
            running += count
            if running >= target:
                return self._bucket_lower(index)
        return self._max_seen

    def relative_error_bound(self) -> float:
        """Worst-case relative quantile error (one bucket's width)."""
        return 10.0 ** (1.0 / self.buckets_per_decade) - 1.0

    def nonzero_buckets(self) -> Iterator[Tuple[float, int]]:
        """(bucket lower bound, count) for every populated bucket."""
        for index, count in enumerate(self._counts):
            if count:
                yield self._bucket_lower(index), count

    def merge(self, other: "LogHistogram") -> None:
        """Fold another histogram (same shape) into this one."""
        if (
            other.min_value_us != self.min_value_us
            or other.max_value_us != self.max_value_us
            or other.buckets_per_decade != self.buckets_per_decade
        ):
            raise ConfigError("cannot merge histograms with different shapes")
        for index, count in enumerate(other._counts):
            self._counts[index] += count
        self._underflow += other._underflow
        self._overflow += other._overflow
        self.total += other.total
        self._sum += other._sum
        self._max_seen = max(self._max_seen, other._max_seen)
