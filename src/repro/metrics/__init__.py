"""Latency and throughput metrics.

Exact (non-sampled) latency recording with percentile/CDF computation --
the evaluation reports P99.9 tails, so reservoir sampling would be too
lossy at the sample counts we run.
"""

from repro.metrics.collector import ExperimentMetrics
from repro.metrics.histogram import LogHistogram
from repro.metrics.percentiles import LatencyRecorder, cdf_points, percentile
from repro.metrics.slo import SloMonitor, SloTarget

__all__ = [
    "LatencyRecorder",
    "percentile",
    "cdf_points",
    "ExperimentMetrics",
    "LogHistogram",
    "SloMonitor",
    "SloTarget",
]
