"""Service-level objective (SLO) tracking.

The motivation running through the paper is *predictable end-to-end
performance*: uncoordinated SDN/SDF stacks "may contradict ... and break
service-level objectives".  :class:`SloMonitor` scores a latency stream
against per-class targets the way a platform operator would: compliance
percentage, violation counts, and the worst violation burst.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class SloTarget:
    """One objective: e.g. 'read P99 under 2 ms'."""

    op_kind: str  # "read" | "write"
    latency_us: float
    #: Quantile the target applies to (e.g. 99.0); 100 = every request.
    quantile: float = 99.0

    def __post_init__(self) -> None:
        if self.op_kind not in ("read", "write"):
            raise ConfigError(f"op_kind must be read/write, got {self.op_kind!r}")
        if self.latency_us <= 0:
            raise ConfigError("latency target must be positive")
        if not 0.0 < self.quantile <= 100.0:
            raise ConfigError("quantile must be in (0,100]")


class SloMonitor:
    """Scores completed requests against a set of targets."""

    def __init__(self, targets: List[SloTarget]) -> None:
        if not targets:
            raise ConfigError("need at least one SLO target")
        self.targets = list(targets)
        self._latencies: Dict[str, List[float]] = {"read": [], "write": []}
        #: Longest run of consecutive over-target requests per class
        #: (sustained violations are what pages an operator).
        self._current_burst: Dict[str, int] = {"read": 0, "write": 0}
        self.worst_burst: Dict[str, int] = {"read": 0, "write": 0}

    def record(self, op_kind: str, latency_us: float) -> None:
        if op_kind not in self._latencies:
            raise ConfigError(f"op_kind must be read/write, got {op_kind!r}")
        self._latencies[op_kind].append(latency_us)
        # Burst tracking against the strictest per-request-style target.
        limit = self._tightest_limit(op_kind)
        if limit is not None and latency_us > limit:
            self._current_burst[op_kind] += 1
            self.worst_burst[op_kind] = max(
                self.worst_burst[op_kind], self._current_burst[op_kind]
            )
        else:
            self._current_burst[op_kind] = 0

    def _tightest_limit(self, op_kind: str) -> Optional[float]:
        limits = [t.latency_us for t in self.targets if t.op_kind == op_kind]
        return min(limits) if limits else None

    def compliance(self, target: SloTarget) -> float:
        """Fraction of requests at or under the target latency."""
        values = self._latencies[target.op_kind]
        if not values:
            return 1.0
        within = sum(1 for v in values if v <= target.latency_us)
        return within / len(values)

    def satisfied(self, target: SloTarget) -> bool:
        """Is the target met at its quantile?"""
        return self.compliance(target) >= target.quantile / 100.0

    def report(self) -> List[Dict[str, object]]:
        rows = []
        for target in self.targets:
            rows.append({
                "target": f"{target.op_kind} P{target.quantile} "
                          f"<= {target.latency_us:.0f}us",
                "compliance_pct": 100.0 * self.compliance(target),
                "satisfied": self.satisfied(target),
            })
        return rows

    def violations(self, target: SloTarget) -> int:
        values = self._latencies[target.op_kind]
        return sum(1 for v in values if v > target.latency_us)
