"""Exact percentile and CDF computation over recorded latencies."""

import math
from typing import List, Sequence, Tuple

from repro.errors import ConfigError


def percentile(values: Sequence[float], q: float) -> float:
    """Exact percentile via linear interpolation (numpy 'linear' method).

    ``q`` is in percent, e.g. ``99.9`` for P99.9.
    """
    if not values:
        raise ConfigError("cannot take a percentile of no samples")
    if not 0.0 <= q <= 100.0:
        raise ConfigError(f"q must be in [0,100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high or ordered[low] == ordered[high]:
        # Also guards against 1-ulp drift when interpolating equal values.
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def cdf_points(values: Sequence[float], points: int = 200) -> List[Tuple[float, float]]:
    """(latency, cumulative fraction) pairs for plotting a CDF."""
    if not values:
        raise ConfigError("cannot build a CDF of no samples")
    if points < 2:
        raise ConfigError(f"need at least 2 CDF points, got {points}")
    ordered = sorted(values)
    n = len(ordered)
    out = []
    for i in range(points):
        frac = i / (points - 1)
        idx = min(n - 1, int(round(frac * (n - 1))))
        out.append((ordered[idx], (idx + 1) / n))
    return out


class LatencyRecorder:
    """Collects latencies for one operation class."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._values: List[float] = []
        self.first_at: float = math.inf
        self.last_at: float = -math.inf

    def record(self, latency_us: float, at: float = 0.0) -> None:
        if latency_us < 0:
            raise ConfigError(f"negative latency {latency_us}")
        self._values.append(latency_us)
        if at < self.first_at:
            self.first_at = at
        if at > self.last_at:
            self.last_at = at

    def __len__(self) -> int:
        return len(self._values)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def values(self) -> List[float]:
        return list(self._values)

    def mean(self) -> float:
        if not self._values:
            raise ConfigError(f"no samples recorded in {self.name!r}")
        return sum(self._values) / len(self._values)

    def p(self, q: float) -> float:
        return percentile(self._values, q)

    def p50(self) -> float:
        return self.p(50.0)

    def p99(self) -> float:
        return self.p(99.0)

    def p999(self) -> float:
        return self.p(99.9)

    def max(self) -> float:
        if not self._values:
            raise ConfigError(f"no samples recorded in {self.name!r}")
        return max(self._values)

    def throughput_kiops(self) -> float:
        """Completions per millisecond == kIOPS, over the recording span."""
        span = self.last_at - self.first_at
        if span <= 0:
            return 0.0
        return self.count / (span / 1000.0)

    def cdf(self, points: int = 200) -> List[Tuple[float, float]]:
        return cdf_points(self._values, points)
