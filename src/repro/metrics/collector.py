"""Aggregated experiment metrics: per-op-class latency plus breakdowns.

Figure 15 reports latency *breakdowns* (storage-stack time vs end-to-end),
so the collector keeps parallel recorders for the total and for the
storage-only component of each request.
"""

from typing import Dict, Optional

from repro.errors import ConfigError
from repro.metrics.percentiles import LatencyRecorder


class ExperimentMetrics:
    """End-to-end and storage-component latencies for reads and writes."""

    def __init__(self) -> None:
        self.read_total = LatencyRecorder("read-total")
        self.write_total = LatencyRecorder("write-total")
        self.read_storage = LatencyRecorder("read-storage")
        self.write_storage = LatencyRecorder("write-storage")
        self.redirected_reads = 0
        self.gc_blocked_reads = 0
        #: Fault-injection counters (filled by the chaos runner; empty
        #: when the experiment ran without a fault schedule).
        self.chaos: Dict[str, float] = {}

    def record(
        self,
        kind: str,
        total_us: float,
        at: float,
        storage_us: Optional[float] = None,
    ) -> None:
        if kind == "read":
            self.read_total.record(total_us, at)
            if storage_us is not None:
                self.read_storage.record(storage_us, at)
        elif kind == "write":
            self.write_total.record(total_us, at)
            if storage_us is not None:
                self.write_storage.record(storage_us, at)
        else:
            raise ConfigError(f"kind must be read/write, got {kind!r}")

    def summary(self) -> Dict[str, float]:
        """A flat dict of the headline numbers (missing classes omitted)."""
        out: Dict[str, float] = {}
        for label, recorder in (
            ("read", self.read_total),
            ("write", self.write_total),
        ):
            if recorder.count:
                out[f"{label}_count"] = float(recorder.count)
                out[f"{label}_avg_us"] = recorder.mean()
                out[f"{label}_p99_us"] = recorder.p99()
                out[f"{label}_p999_us"] = recorder.p999()
                out[f"{label}_kiops"] = recorder.throughput_kiops()
        for label, recorder in (
            ("read_storage", self.read_storage),
            ("write_storage", self.write_storage),
        ):
            if recorder.count:
                out[f"{label}_p999_us"] = recorder.p999()
                out[f"{label}_avg_us"] = recorder.mean()
        out["redirected_reads"] = float(self.redirected_reads)
        out["gc_blocked_reads"] = float(self.gc_blocked_reads)
        for key in sorted(self.chaos):
            out[f"chaos_{key}"] = float(self.chaos[key])
        return out

    def total_kiops(self) -> float:
        spans = []
        count = 0
        for recorder in (self.read_total, self.write_total):
            if recorder.count:
                spans.append((recorder.first_at, recorder.last_at))
                count += recorder.count
        if not spans or count == 0:
            return 0.0
        start = min(s for s, _ in spans)
        end = max(e for _, e in spans)
        # All completions at one timestamp still represent real work: fall
        # back to a 1-µs span so a burst reports a finite (huge) rate
        # instead of a silent 0.
        elapsed_us = max(end - start, 1.0)
        return count / (elapsed_us / 1000.0)
