"""Exception hierarchy for the RackBlox reproduction.

All package-specific errors derive from :class:`ReproError` so callers can
catch everything from this library with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class FlashError(ReproError):
    """Invalid operation against the flash substrate."""


class OutOfSpaceError(FlashError):
    """A write could not be serviced because no free page exists."""


class AddressError(FlashError):
    """A logical or physical address is outside the device's range."""


class VSSDError(ReproError):
    """Invalid vSSD configuration or operation."""


class NetworkError(ReproError):
    """Malformed packet or invalid network configuration."""


class SwitchError(ReproError):
    """The ToR switch data or control plane was misused."""


class ConfigError(ReproError):
    """An experiment or component configuration is invalid."""
