"""Ablation: erase suspend/resume vs coordinated GC.

Within-device GC mitigation (suspend the erase when host reads queue) is
the prior-work alternative RackBlox's related work discusses (e.g.
TinyTail [88]).  It shortens the *per-command* stall but keeps reads on
the GC-ing device; RackBlox removes them from it entirely.  Expectation:
suspension helps VDC's read tail, but coordinated redirection still wins.
"""

from conftest import BENCH_RATE, BENCH_SEED, run_once

from repro.cluster.config import RackConfig, SystemType
from repro.experiments.runner import run_rack_experiment
from repro.workloads import ycsb


def sweep_suspend():
    rows = []
    for label, system, suspend in (
        ("VDC", SystemType.VDC, False),
        ("VDC+suspend", SystemType.VDC, True),
        ("RackBlox", SystemType.RACKBLOX, False),
        ("RackBlox+suspend", SystemType.RACKBLOX, True),
    ):
        config = RackConfig(system=system, erase_suspend=suspend,
                            seed=BENCH_SEED)
        result = run_rack_experiment(
            config, ycsb(0.6), requests_per_pair=2000,
            rate_iops_per_pair=BENCH_RATE,
        )
        rows.append({
            "config": label,
            "read_p99": result.metrics.read_total.p99(),
            "read_p999": result.metrics.read_total.p999(),
        })
    return rows


def test_ablation_erase_suspend(benchmark):
    rows = run_once(benchmark, sweep_suspend)
    print()
    for row in rows:
        print(row)
    by_config = {row["config"]: row for row in rows}
    # Suspension is a big within-device win for the GC-blind baseline.
    assert (
        by_config["VDC+suspend"]["read_p99"]
        < by_config["VDC"]["read_p99"] / 2
    )
    # At P99 the two approaches tie (the worst stall is one erase slice
    # either way); at P99.9 coordinated redirection still wins, because
    # suspension keeps reads on the GC-ing device and the stretched erase
    # queues them up.
    assert (
        by_config["RackBlox"]["read_p999"]
        < by_config["VDC+suspend"]["read_p999"]
    )
    # And the two mechanisms compose: suspend under RackBlox is best.
    assert (
        by_config["RackBlox+suspend"]["read_p999"]
        <= by_config["RackBlox"]["read_p999"]
    )
