"""Figure 19: latency distributions across SSD x network pairings."""

from conftest import BENCH_RATE, BENCH_SEED, run_once

from repro.experiments.figures import fig19_device_network_matrix


def test_fig19_device_network_matrix(benchmark):
    result = run_once(
        benchmark, fig19_device_network_matrix,
        requests=1500, rate=BENCH_RATE, seed=BENCH_SEED,
    )
    print()
    print(result.to_table())
    cells = {(row["ssd"], row["network"]): row for row in result.rows}
    # Device ordering holds when the network is fixed: faster SSDs give
    # lower medians.
    for network in ("fast", "medium", "slow"):
        assert (
            cells[("optane", network)]["P50"]
            < cells[("pssd", network)]["P50"]
        ), network
    # Network ordering holds when the SSD is fixed.
    for ssd in ("optane", "intel-dc", "pssd"):
        assert cells[(ssd, "fast")]["P50"] < cells[(ssd, "slow")]["P50"], ssd
    # Upgrading the SSD under a slow network barely moves the median
    # (paper: "upgrading the SSD from Intel DC to Optane under Slow
    # network brings little benefit").
    slow_gain = (
        cells[("intel-dc", "slow")]["P50"] / cells[("optane", "slow")]["P50"]
    )
    fast_gain = (
        cells[("intel-dc", "fast")]["P50"] / cells[("optane", "fast")]["P50"]
    )
    assert fast_gain > slow_gain
