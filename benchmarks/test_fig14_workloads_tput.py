"""Figure 14: throughput across the BenchBase workloads."""

from conftest import BENCH_RATE, BENCH_REQUESTS, BENCH_SEED, run_once

from repro.experiments.figures import fig14_workloads_tput


def test_fig14_workloads_tput(benchmark):
    result = run_once(
        benchmark, fig14_workloads_tput,
        requests=BENCH_REQUESTS, rate=BENCH_RATE, seed=BENCH_SEED,
    )
    print()
    print(result.to_table())
    for row in result.rows:
        assert row["RackBlox kIOPS"] >= row["VDC kIOPS"] * 0.9, row
