"""Figure 12: throughput parity across systems."""

from conftest import BENCH_RATE, BENCH_REQUESTS, BENCH_SEED, run_once

from repro.experiments.figures import fig12_throughput


def test_fig12_throughput(benchmark):
    result = run_once(
        benchmark, fig12_throughput,
        requests=BENCH_REQUESTS, rate=BENCH_RATE, seed=BENCH_SEED,
    )
    print()
    print(result.to_table())
    # Shape: open-loop throughput tracks the offered load for every
    # system; RackBlox costs nothing (within 10% of VDC everywhere).
    for row in result.rows:
        vdc = row["VDC kIOPS"]
        rb = row["RackBlox kIOPS"]
        assert rb >= vdc * 0.9, row
