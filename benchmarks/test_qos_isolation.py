"""Multi-tenant QoS isolation perf-smoke: the PR-10 acceptance artifact.

Three tenant classes against one live sharded server --

* ``gold``   -- weight 4, tight SLO, double cache share;
* ``silver`` -- weight 2;
* ``flood``  -- weight 1, rate-metered, driven at **2x its contracted
  rate** by an open-loop loadgen while the compliant tenants run their
  closed-loop mixes.

Two gates land in ``BENCH_qos.json`` (path override: ``BENCH_QOS_OUT``):

* **isolation** -- each compliant tenant's p99 under the flood stays
  within ``ISOLATION_FLOOR``x of its solo-run p99 (same load shape, no
  flood);
* **cache** -- a zipf(s=1.3) read-hot run clears a
  ``CACHE_HIT_FLOOR`` DRAM hit rate at the server.

Both are **core-count gated** (the flood, the compliant lanes, and the
server all need their own cores for the numbers to mean anything); the
artifact records whether they were enforced.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_OUT_PATH = os.environ.get(
    "BENCH_QOS_OUT", os.path.join(_REPO_ROOT, "BENCH_qos.json"))

CORES = os.cpu_count() or 1
GATE_CORES = 8
#: Compliant tenants' contended p99 must stay within this factor of solo.
ISOLATION_FLOOR = 1.5
#: Minimum DRAM hit rate for the zipf(s=1.3) read-hot row.
CACHE_HIT_FLOOR = 0.60

#: The flood tenant's contracted rate; the bench drives it at 2x this.
FLOOD_RATE = 1000.0
FLOOD_DURATION_S = 8.0

CLIENTS = 8
REQUESTS_PER_CLIENT = 300
PIPELINE = 4
KEYSPACE = 256
ZIPF_S = 1.3

TENANT_SPEC = json.dumps({
    "tenants": [
        {"name": "gold", "weight": 4, "slo_ms": 20, "cache_share": 2},
        {"name": "silver", "weight": 2, "slo_ms": 50},
        {"name": "flood", "weight": 1, "rate_per_sec": FLOOD_RATE,
         "burst": 64},
    ],
    "cache_capacity": 4096,
})

SERVE_ARGS = ["--racks", "2", "--servers", "2", "--pairs", "4",
              "--queue-depth", "512", "--chunk-us", "8000", "--seed", "42",
              "--tenants", TENANT_SPEC]

_results = {}


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src")
    return env


def _spawn_serve():
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         *SERVE_ARGS],
        cwd=_REPO_ROOT, env=_env(),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    line = proc.stdout.readline()
    match = re.search(r"on 127\.0\.0\.1:(\d+)", line)
    assert match, f"server did not announce a port: {line!r}"
    assert "[qos]" in line, f"server came up without QoS: {line!r}"
    return proc, int(match.group(1))


def _stop_serve(proc):
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise


def _lane_cmd(port, tenant):
    """One compliant tenant's closed-loop mix (identical solo and
    contended, so the p99 comparison is apples to apples)."""
    return [sys.executable, "-m", "repro.cli", "loadgen",
            "--port", str(port), "--tenants", tenant,
            "--kind", "kv", "--clients", str(CLIENTS),
            "--requests", str(REQUESTS_PER_CLIENT),
            "--pipeline", str(PIPELINE),
            "--write-ratio", "0.1", "--keyspace", str(KEYSPACE),
            "--key-dist", "zipf", "--zipf-s", str(ZIPF_S),
            "--pairs", "4", "--seed", "7"]


def _flood_cmd(port):
    return [sys.executable, "-m", "repro.cli", "loadgen",
            "--port", str(port), "--tenants", "flood",
            "--kind", "kv", "--mode", "open",
            "--rate", str(2.0 * FLOOD_RATE),
            "--duration", str(FLOOD_DURATION_S),
            "--clients", str(CLIENTS),
            "--write-ratio", "0.1", "--keyspace", str(KEYSPACE),
            "--pairs", "4", "--seed", "13", "--retries", "0"]


def _lane_p99(out, tenant):
    match = re.search(rf"tenant {tenant}: .* p99 ([\d.]+)ms", out)
    assert match, f"no p99 lane for {tenant}:\n{out}"
    return float(match.group(1))


def _run_lane(port, tenant):
    proc = subprocess.run(_lane_cmd(port, tenant), cwd=_REPO_ROOT,
                          env=_env(), stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True, timeout=300)
    out = proc.stdout
    assert proc.returncode == 0, f"{tenant} lane failed:\n{out}"
    assert "errors 0" in out, f"{tenant} lane saw errors:\n{out}"
    assert "busy 0" in out, f"a compliant tenant was shed:\n{out}"
    return _lane_p99(out, tenant)


def _server_stats(port):
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))
    import asyncio

    from repro.service.client import ServiceClient

    async def fetch():
        async with ServiceClient("127.0.0.1", port, "bench-stats") as c:
            return await c.stats()

    return asyncio.run(fetch())


def test_solo_baselines(benchmark):
    proc, port = _spawn_serve()
    try:
        def run():
            return {t: _run_lane(port, t) for t in ("gold", "silver")}

        _results["solo_p99_ms"] = benchmark.pedantic(
            run, rounds=1, iterations=1)
    finally:
        _stop_serve(proc)
    print(f"\nsolo p99: {_results['solo_p99_ms']}")


def test_contended_under_flood(benchmark):
    proc, port = _spawn_serve()
    flood = None
    try:
        def run():
            nonlocal flood
            flood = subprocess.Popen(_flood_cmd(port), cwd=_REPO_ROOT,
                                     env=_env(), stdout=subprocess.PIPE,
                                     stderr=subprocess.STDOUT, text=True)
            time.sleep(1.0)  # let the flood saturate its rate gate
            return {t: _run_lane(port, t) for t in ("gold", "silver")}

        _results["contended_p99_ms"] = benchmark.pedantic(
            run, rounds=1, iterations=1)
        out, _ = flood.communicate(timeout=60)
        assert flood.returncode == 0, f"flood lane failed:\n{out}"
        match = re.search(r"tenant flood: sent (\d+)\s+ok (\d+)\s+busy (\d+)",
                          out)
        assert match, f"no flood lane:\n{out}"
        sent, ok, busy = (int(g) for g in match.groups())
        _results["flood"] = {"sent": sent, "ok": ok, "busy": busy}
    finally:
        if flood is not None and flood.poll() is None:
            flood.kill()
        _stop_serve(proc)
    # Driven at 2x its contracted rate, the flood must actually have
    # been shed -- otherwise the contended row proved nothing.
    assert busy > 0, "the flood was never rate-limited"
    print(f"\ncontended p99: {_results['contended_p99_ms']}  "
          f"flood shed {busy}/{sent}")


def test_cache_hit_rate(benchmark):
    proc, port = _spawn_serve()
    try:
        def _pass(write_ratio, key_dist):
            cmd = _lane_cmd(port, "gold")
            cmd[cmd.index("--write-ratio") + 1] = write_ratio
            cmd[cmd.index("--key-dist") + 1] = key_dist
            lane = subprocess.run(cmd, cwd=_REPO_ROOT, env=_env(),
                                  stdout=subprocess.PIPE,
                                  stderr=subprocess.STDOUT, text=True,
                                  timeout=300)
            assert lane.returncode == 0, lane.stdout

        def run():
            # Seed every key (misses to absent keys are, by design,
            # never cached -- an unseeded keyspace cannot hit), warm
            # the cache with one zipf read pass, then measure the
            # steady-state pass on its own.
            _pass("1.0", "uniform")
            _pass("0.0", "zipf")
            before = _server_stats(port)["readcache"]
            _pass("0.0", "zipf")
            after = _server_stats(port)["readcache"]
            return before, after

        before, after = benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        _stop_serve(proc)
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    _results["cache"] = {
        "steady_hits": hits, "steady_misses": misses,
        "hit_rate": round(hits / (hits + misses), 4),
        "cumulative_hit_rate": round(after["hit_rate"], 4),
        "entries": after["entries"],
        "zipf_s": ZIPF_S, "keyspace": KEYSPACE,
    }
    print(f"\nsteady-state cache hit rate: "
          f"{_results['cache']['hit_rate']:.1%} "
          f"({hits:.0f} hits / {misses:.0f} misses; "
          f"cumulative {after['hit_rate']:.1%})")


def test_emit_artifact_and_gate():
    assert {"solo_p99_ms", "contended_p99_ms", "flood",
            "cache"} <= set(_results), (
        f"rows missing (ran out of order?): {sorted(_results)}")
    gated = CORES >= GATE_CORES
    ratios = {
        t: round(_results["contended_p99_ms"][t]
                 / _results["solo_p99_ms"][t], 3)
        for t in ("gold", "silver")
    }
    hit_rate = _results["cache"]["hit_rate"]
    artifact = {
        "bench": "qos-isolation",
        "cores": CORES,
        "tenants": json.loads(TENANT_SPEC)["tenants"],
        "flood_rate_contracted": FLOOD_RATE,
        "flood_rate_driven": 2.0 * FLOOD_RATE,
        "flood": _results["flood"],
        "solo_p99_ms": _results["solo_p99_ms"],
        "contended_p99_ms": _results["contended_p99_ms"],
        "p99_ratio_contended_vs_solo": ratios,
        "cache": _results["cache"],
        "gate": {
            "isolation_floor": ISOLATION_FLOOR,
            "cache_hit_floor": CACHE_HIT_FLOOR,
            "enforced": gated,
            "reason": (None if gated else
                       f"host has {CORES} cores < {GATE_CORES}"),
        },
    }
    with open(_OUT_PATH, "w") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {_OUT_PATH}")
    print(json.dumps({"p99_ratio": ratios, "hit_rate": hit_rate},
                     indent=2, sort_keys=True))
    if gated:
        for tenant, ratio in ratios.items():
            assert ratio <= ISOLATION_FLOOR, (
                f"{tenant}'s p99 degraded {ratio:.2f}x under a 2x-rate "
                f"flood -- QoS isolation must hold it within "
                f"{ISOLATION_FLOOR}x of solo")
        assert hit_rate >= CACHE_HIT_FLOOR, (
            f"zipf(s={ZIPF_S}) hit rate {hit_rate:.1%} is below the "
            f"{CACHE_HIT_FLOOR:.0%} floor")
    else:
        print(f"gates waived: {CORES} cores < {GATE_CORES} "
              f"(artifact still written)")
