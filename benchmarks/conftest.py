"""Shared benchmark settings.

All figure benches use the same request scale and seed so the memoized
run cache in :mod:`repro.experiments.figures` is shared across figures
that sweep the same configurations (9/10/11/12 reuse one YCSB sweep).
"""

#: Requests per pair for the bench-scale runs.  EXPERIMENTS.md records the
#: full-scale numbers; benches use a scale that keeps the whole suite in
#: minutes while preserving every headline shape.
BENCH_REQUESTS = 2000
BENCH_RATE = 1500.0
BENCH_SEED = 42


def run_once(benchmark, fn, *args, **kwargs):
    """Run a figure exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
