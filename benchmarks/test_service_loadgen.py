"""Live-service benchmark: the localhost acceptance run.

One rack service in a subprocess, driven over real TCP:

* **capacity** -- 32 closed-loop clients sustain >= 5,000 req/s with a
  finite latency distribution on both sides of the wire;
* **overload** -- an open-loop run at 2x the capacity target sheds with
  explicit ``BUSY`` (bounded queue, no crash) while the p99 of the
  *admitted* requests stays bounded;
* **graceful shutdown** -- SIGTERM drains in-flight requests and the
  server exits 0.

Tests share the module-scoped server and run in definition order (the
shutdown test terminates it last).
"""

import asyncio
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from conftest import run_once

from repro.service.loadgen import run_loadgen

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The acceptance floor for 32 closed-loop clients on localhost.
CAPACITY_FLOOR_RPS = 5_000.0
CLIENTS = 32
PIPELINE = 6
REQUESTS_PER_CLIENT = 400

_measured = {"capacity_rps": CAPACITY_FLOOR_RPS}


@pytest.fixture(scope="module")
def service_proc():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--servers", "2", "--pairs", "4",
            "--queue-depth", "512", "--chunk-us", "8000", "--seed", "42",
        ],
        cwd=_REPO_ROOT, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    line = proc.stdout.readline()
    match = re.search(r"on 127\.0\.0\.1:(\d+)", line)
    assert match, f"server did not announce a port: {line!r}"
    yield proc, int(match.group(1))
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()


def _drive(port: int, **kwargs):
    return asyncio.run(run_loadgen("127.0.0.1", port, **kwargs))


def test_closed_loop_capacity(service_proc, benchmark):
    proc, port = service_proc
    report = run_once(
        benchmark, _drive, port,
        mode="closed", clients=CLIENTS,
        requests_per_client=REQUESTS_PER_CLIENT, pipeline=PIPELINE,
        write_ratio=0.0, kind="raw", pairs=4, seed=7,
    )
    print()
    print(report.describe())
    assert proc.poll() is None, "server died under load"
    assert report.errors == 0
    assert report.ok == CLIENTS * REQUESTS_PER_CLIENT
    assert report.throughput_rps >= CAPACITY_FLOOR_RPS, (
        f"{report.throughput_rps:,.0f} req/s is below the "
        f"{CAPACITY_FLOOR_RPS:,.0f} req/s acceptance floor"
    )
    # Finite latency on the wire...
    for q in (50.0, 99.0):
        value = report.latency_ms(q)
        assert value == value and value != float("inf"), f"p{q} not finite"
    assert report.latency_ms(50.0) <= report.latency_ms(99.0)
    # ...and in the server's live collector.
    metrics = report.server_stats["metrics"]
    assert 0.0 < metrics["read_p99_us"] < float("inf")
    assert metrics["read_avg_us"] <= metrics["read_p99_us"]
    _measured["capacity_rps"] = report.throughput_rps


def test_overload_sheds_busy_and_stays_bounded(service_proc, benchmark):
    proc, port = service_proc
    overload_rps = 2.0 * max(CAPACITY_FLOOR_RPS, _measured["capacity_rps"])
    report = run_once(
        benchmark, _drive, port,
        mode="open", clients=CLIENTS, duration_s=3.0,
        rate_rps=overload_rps, write_ratio=0.0, kind="raw", pairs=4,
        seed=7,
    )
    print()
    print(f"open loop at {overload_rps:,.0f} req/s target (2x capacity):")
    print(report.describe())
    assert proc.poll() is None, "server died under overload"
    assert report.errors == 0, "overload must shed cleanly, not error"
    assert report.busy > 0, "2x overload must trigger BUSY shedding"
    assert report.ok + report.busy == report.sent
    # The queue-depth cap bounds what the admitted requests can queue
    # behind, so their p99 stays bounded even with the offered load at 2x.
    admitted_p99_ms = report.latency_ms(99.0)
    assert admitted_p99_ms == admitted_p99_ms, "no admitted requests?"
    assert admitted_p99_ms < 5_000.0, (
        f"admitted p99 {admitted_p99_ms:.0f} ms suggests unbounded queueing"
    )
    shed = report.server_stats["admission"]["shed_queue_full"]
    assert shed >= report.busy  # the server counted every shed we saw


def test_graceful_shutdown_drains(service_proc):
    proc, _port = service_proc
    assert proc.poll() is None
    proc.send_signal(signal.SIGTERM)
    deadline = time.monotonic() + 30.0
    while proc.poll() is None and time.monotonic() < deadline:
        time.sleep(0.1)
    assert proc.poll() == 0, "server did not exit cleanly on SIGTERM"
    tail = proc.stdout.read()
    print()
    print(tail.strip())
    assert "draining in-flight requests" in tail
    match = re.search(r"served (\d+) requests \((\d+) timed out\)", tail)
    assert match, f"missing drain summary: {tail!r}"
    assert int(match.group(1)) > 0
