"""The named YCSB core suite (A/B/C/D/F) on VDC vs RackBlox.

The paper sweeps YCSB by write ratio; this bench runs the *named* suite
the community quotes, including YCSB-D's latest-distribution reads and
YCSB-F's read-modify-write pairs (driven through the same client
machinery via the suite generator).
"""

import pytest
from conftest import BENCH_SEED, run_once

from repro.cluster import Client, Rack, RackConfig, SystemType
from repro.experiments.runner import run_until
from repro.metrics import ExperimentMetrics
from repro.sim import AllOf
from repro.workloads.ycsb_suite import YCSB_SUITE, YcsbGenerator


def run_named(system: SystemType, workload_name: str, requests=1200):
    config = RackConfig(system=system, num_servers=4, num_pairs=4,
                        seed=BENCH_SEED)
    rack = Rack(config)
    rack.precondition()
    metrics = ExperimentMetrics()
    processes = []
    for idx, pair in enumerate(rack.pairs):
        generator = YcsbGenerator(
            YCSB_SUITE[workload_name],
            key_space=rack.working_set_pages(pair),
            rate_iops=1500.0,
            rng=rack.rng.stream(f"client-{idx}"),
        )
        client = Client(rack, f"client-{idx}", pair, generator, metrics)
        processes.append(rack.sim.spawn(client.run(requests)))
    run_until(rack.sim, AllOf(rack.sim, processes))
    return metrics


def sweep_suite():
    rows = []
    for name in sorted(YCSB_SUITE):
        vdc = run_named(SystemType.VDC, name)
        rb = run_named(SystemType.RACKBLOX, name)
        rows.append({
            "workload": name,
            "vdc_read_p99": vdc.read_total.p99() if vdc.read_total.count else None,
            "rb_read_p99": rb.read_total.p99() if rb.read_total.count else None,
        })
    return rows


def test_ycsb_named_suite(benchmark):
    rows = run_once(benchmark, sweep_suite)
    print()
    for row in rows:
        print(row)
    by_name = {row["workload"]: row for row in rows}
    # Update-heavy A and F see the GC-coordination win.
    for name in ("ycsb-a", "ycsb-f"):
        row = by_name[name]
        assert row["rb_read_p99"] < row["vdc_read_p99"], row
    # Read-only C is GC-free: parity between systems.
    c = by_name["ycsb-c"]
    assert c["rb_read_p99"] == pytest.approx(c["vdc_read_p99"], rel=0.2)

