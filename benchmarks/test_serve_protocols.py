"""Protocol-matrix perf-smoke: the PR-6 acceptance artifact.

Three closed-loop rows against real TCP serve subprocesses --

* ``json-1core``   -- the v1 wire, one acceptor process (the baseline);
* ``bin-1core``    -- the negotiated binary fast path, same server;
* ``bin-percore``  -- binary + ``--workers N`` SO_REUSEPORT acceptors,
  driven by N concurrent loadgen processes.

Every run's admitted req/s lands in ``BENCH_serve.json`` (path override:
``BENCH_SERVE_OUT``).  The headline >= 5x gate for ``bin-percore`` over
``json-1core`` is **core-count gated**: per-core acceptors cannot beat a
single core on a box that only has one, so the gate arms at
``GATE_CORES`` cores and the artifact records whether it was enforced.
"""

import json
import os
import re
import signal
import subprocess
import sys

import pytest

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_OUT_PATH = os.environ.get(
    "BENCH_SERVE_OUT", os.path.join(_REPO_ROOT, "BENCH_serve.json"))

CORES = os.cpu_count() or 1
#: Cores needed before the 5x speedup assertion arms.  The fleet needs
#: headroom for the acceptors *and* the loadgen processes driving them.
GATE_CORES = 8
SPEEDUP_FLOOR = 5.0
#: Absolute sanity floor for every row (localhost, admitted req/s).
ROW_FLOOR_RPS = 1_000.0

PERCORE_WORKERS = max(2, min(8, CORES))
CLIENTS = 16
REQUESTS_PER_CLIENT = 200
PIPELINE = 6

SERVE_ARGS = ["--servers", "2", "--pairs", "4", "--queue-depth", "512",
              "--chunk-us", "8000", "--seed", "42"]

_rows = {}


def _spawn_serve(extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         *SERVE_ARGS, *extra],
        cwd=_REPO_ROOT, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    line = proc.stdout.readline()
    match = re.search(r"on 127\.0\.0\.1:(\d+)", line)
    assert match, f"server did not announce a port: {line!r}"
    return proc, int(match.group(1))


def _stop_serve(proc):
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise


def _loadgen_cmd(port, protocol):
    return [sys.executable, "-m", "repro.cli", "loadgen",
            "--port", str(port), "--protocol", protocol,
            "--clients", str(CLIENTS),
            "--requests", str(REQUESTS_PER_CLIENT),
            "--pipeline", str(PIPELINE),
            "--write-ratio", "0.0", "--pairs", "4", "--seed", "7"]


def _drive(port, protocol, procs=1):
    """Run ``procs`` concurrent loadgen subprocesses; sum admitted req/s."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src")
    running = [
        subprocess.Popen(_loadgen_cmd(port, protocol), cwd=_REPO_ROOT,
                         env=env, stdout=subprocess.PIPE,
                         stderr=subprocess.STDOUT, text=True)
        for _ in range(procs)
    ]
    total_rps = 0.0
    for proc in running:
        out, _ = proc.communicate(timeout=300)
        assert proc.returncode == 0, f"loadgen failed:\n{out}"
        assert "errors 0" in out, f"loadgen saw errors:\n{out}"
        assert f"protocol {protocol}" in out, (
            f"negotiation landed off-target:\n{out}")
        match = re.search(r"throughput ([\d,]+) req/s", out)
        assert match, f"no throughput line:\n{out}"
        total_rps += float(match.group(1).replace(",", ""))
    return total_rps


def _record(row, rps):
    _rows[row] = round(rps, 1)
    print(f"\n{row}: {rps:,.0f} req/s (admitted)")
    assert rps >= ROW_FLOOR_RPS, (
        f"{row} at {rps:,.0f} req/s is below the {ROW_FLOOR_RPS:,.0f} "
        f"req/s sanity floor"
    )


def test_json_one_core(benchmark):
    proc, port = _spawn_serve([])
    try:
        rps = benchmark.pedantic(_drive, args=(port, "json"),
                                 rounds=1, iterations=1)
    finally:
        _stop_serve(proc)
    _record("json-1core", rps)


def test_bin_one_core(benchmark):
    proc, port = _spawn_serve([])
    try:
        rps = benchmark.pedantic(_drive, args=(port, "bin"),
                                 rounds=1, iterations=1)
    finally:
        _stop_serve(proc)
    _record("bin-1core", rps)


def test_bin_percore(benchmark):
    proc, port = _spawn_serve(["--workers", str(PERCORE_WORKERS)])
    try:
        rps = benchmark.pedantic(
            _drive, args=(port, "bin"),
            kwargs={"procs": min(PERCORE_WORKERS, 4)},
            rounds=1, iterations=1,
        )
    finally:
        _stop_serve(proc)
    _record("bin-percore", rps)


def test_emit_artifact_and_gate():
    # Runs last (definition order): the three rows above have filled
    # ``_rows``; write the artifact, then enforce the core-gated floor.
    assert set(_rows) == {"json-1core", "bin-1core", "bin-percore"}, (
        f"rows missing (ran out of order?): {sorted(_rows)}")
    speedup = _rows["bin-percore"] / _rows["json-1core"]
    gated = CORES >= GATE_CORES
    artifact = {
        "bench": "serve-protocol-matrix",
        "cores": CORES,
        "workers": PERCORE_WORKERS,
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "pipeline": PIPELINE,
        "rows_rps": dict(_rows),
        "speedup_bin_percore_vs_json_1core": round(speedup, 2),
        "gate": {
            "floor": SPEEDUP_FLOOR,
            "enforced": gated,
            "reason": (None if gated else
                       f"host has {CORES} cores < {GATE_CORES}"),
        },
    }
    with open(_OUT_PATH, "w") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {_OUT_PATH}")
    print(json.dumps(artifact["rows_rps"], indent=2, sort_keys=True))
    print(f"speedup bin-percore / json-1core: {speedup:.2f}x "
          f"(gate {'ENFORCED' if gated else 'waived'}: "
          f">= {SPEEDUP_FLOOR}x needs >= {GATE_CORES} cores)")
    if gated:
        assert speedup >= SPEEDUP_FLOOR, (
            f"bin-percore is only {speedup:.2f}x json-1core on a "
            f"{CORES}-core host -- the fast path + per-core acceptors "
            f"must clear {SPEEDUP_FLOOR}x"
        )
    elif CORES == 1:
        pytest.skip(f"speedup gate waived: {CORES} core < {GATE_CORES} "
                    f"(artifact still written)")
