"""Ablation: background-GC idle prediction (§3.5.1).

Background GC fires when the exponentially smoothed inter-request
interval exceeds a threshold (30 ms, alpha = 0.5).  Under a bursty
arrival pattern with real idle valleys, a lower threshold harvests more
idle windows; under steady traffic it must never fire.
"""

from conftest import run_once

from repro.flash import FlashGeometry, Ssd
from repro.server.gc_monitor import GcMonitor, LocalGcCoordinator
from repro.server.idle import IdlePredictor
from repro.sim import Simulator, Timeout
from repro.sim.core import MSEC
from repro.vssd import VssdAllocator


def run_bursty(threshold_ms):
    sim = Simulator()
    geo = FlashGeometry(channels=2, chips_per_channel=2, blocks_per_chip=32,
                        pages_per_block=8)
    ssd = Ssd(sim, "ssd", geometry=geo)
    vssd = VssdAllocator(ssd).create_hardware_isolated(
        "v", channels=[0, 1]
    )
    # Create stale pages without crossing the soft threshold.
    for lpn in range(vssd.logical_pages // 3):
        vssd.ftl.place_write(lpn)
    for lpn in range(vssd.logical_pages // 6):
        vssd.ftl.place_write(lpn)
    predictor = IdlePredictor(alpha=0.5, threshold_us=threshold_ms * MSEC)
    monitor = GcMonitor(
        sim, [vssd], LocalGcCoordinator(), {vssd.vssd_id: predictor},
        check_interval_us=10 * MSEC,
    )
    monitor.start()

    def sparse_client():
        # Sparse traffic: ~45 ms between requests, so the exponentially
        # smoothed interval converges to ~45 ms -- the predictor's signal
        # that idle windows are long enough to harvest.
        for _ in range(30):
            predictor.record_request(sim.now)
            yield Timeout(sim, 45 * MSEC)

    sim.spawn(sparse_client())
    sim.run(until=1_500 * MSEC)
    return monitor.requests_sent["bg"]


def test_ablation_idle_gc(benchmark):
    def sweep():
        return {t: run_bursty(t) for t in (10, 30, 200)}

    counts = run_once(benchmark, sweep)
    print()
    print(f"bg GC count by idle threshold (ms): {counts}")
    # A permissive threshold harvests the ~45 ms idle windows; an extreme
    # one never fires.
    assert counts[10] >= counts[30] >= counts[200]
    assert counts[10] > 0
    assert counts[200] == 0
