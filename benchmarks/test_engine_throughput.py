"""Engine speed benchmarks: raw simulator events/sec and parallel fan-out.

Unlike the figure benches (which record *rack behaviour*), these record
*engine* speed so the perf trajectory captures regressions in the event
loop and the experiment fan-out from this PR onward.
"""

import time

from conftest import run_once

from repro.cluster.config import SystemType
from repro.experiments.figures import clear_cache, fig9_p999_latency
from repro.experiments.parallel import ParallelRunner, RunCache, RunSpec, using_jobs
from repro.sim import Simulator
from repro.trace import NullTracer
from repro.workloads.spec import ycsb

#: Enough events for stable events/sec numbers but < 1 s of wall clock.
_EVENT_TARGET = 200_000


def _event_churn(events: int) -> float:
    """Drive a self-rescheduling callback chain for ``events`` callbacks;
    returns wall-clock seconds."""
    sim = Simulator()

    def tick():
        sim.call_after(1.0, tick)

    # A handful of independent chains exercises heap ordering, not just
    # the single-hot-entry fast path.
    for i in range(8):
        sim.call_after(float(i), tick)
    started = time.perf_counter()
    sim.run(max_events=events)
    elapsed = time.perf_counter() - started
    assert sim.event_count == events
    return elapsed


def test_simulator_event_throughput(benchmark):
    elapsed = run_once(benchmark, _event_churn, _EVENT_TARGET)
    rate = _EVENT_TARGET / elapsed
    print()
    print(f"raw event loop: {rate:,.0f} events/sec "
          f"({_EVENT_TARGET} events in {elapsed:.3f}s)")
    # Loose floor: a regression that makes the loop 10x slower should fail
    # loudly; normal machines do millions of events/sec.
    assert rate > 50_000


def test_simulator_cancel_churn_throughput(benchmark):
    """Timeout-guard churn: schedule + cancel must stay O(log n) per op
    (the cancelled-entry compaction keeps the heap from growing)."""

    def churn() -> int:
        sim = Simulator()
        for _ in range(50_000):
            sim.call_after(1e6, lambda: None).cancel()
        return sim.pending_count

    pending = run_once(benchmark, churn)
    print()
    print(f"heap entries after 50k schedule+cancel cycles: {pending}")
    assert pending < 200


def test_rack_run_reports_engine_throughput(benchmark):
    spec = RunSpec.create(
        SystemType.RACKBLOX, ycsb(0.5), 300, 1500.0, 42,
        num_servers=2, num_pairs=2,
    )
    result = run_once(benchmark, spec.execute)
    print()
    print(f"rack run: {result.events} events in {result.wall_clock_s:.2f}s "
          f"-> {result.events_per_sec():,.0f} events/sec")
    assert result.events_per_sec() > 0


def test_serial_vs_parallel_figure_sweep(benchmark):
    """Wall clock of the same figure sweep, serial vs --jobs fan-out.

    On a single-core box the parallel run may not win (fork + pickle
    overhead with no extra hardware), so this records both numbers and
    asserts only correctness: bit-identical rows.
    """
    kwargs = dict(write_ratios=(0.0, 0.4, 0.8), requests=400, seed=42)

    def measured() -> dict:
        clear_cache()
        with using_jobs(1):
            t0 = time.perf_counter()
            serial = fig9_p999_latency(**kwargs)
            serial_s = time.perf_counter() - t0
        clear_cache()
        with using_jobs(4):
            t0 = time.perf_counter()
            fanned = fig9_p999_latency(**kwargs)
            parallel_s = time.perf_counter() - t0
        clear_cache()
        return dict(serial=serial, fanned=fanned,
                    serial_s=serial_s, parallel_s=parallel_s)

    out = run_once(benchmark, measured)
    print()
    print(f"figure sweep (9 racks): serial {out['serial_s']:.1f}s, "
          f"--jobs 4 {out['parallel_s']:.1f}s "
          f"(speedup {out['serial_s'] / out['parallel_s']:.2f}x)")
    assert out["serial"].rows == out["fanned"].rows


def test_null_tracer_overhead_under_two_percent(benchmark):
    """Untraced runs must not pay for the tracing instrumentation.

    With `trace_sample_rate=0` every instrumentation site degrades to a
    `NullTracer.start_request` call (returns None) plus `payload.get`
    misses.  This measures that degraded path directly -- per-call cost x
    calls-per-request against the measured run wall clock -- and asserts
    the instrumentation accounts for < 2% of an untraced run.  Full
    tracing (sample rate 1.0) is also timed for the printed comparison.
    """
    untraced = RunSpec.create(
        SystemType.RACKBLOX, ycsb(0.5), 300, 1500.0, 42,
        num_servers=2, num_pairs=2,
    )
    traced = RunSpec.create(
        SystemType.RACKBLOX, ycsb(0.5), 300, 1500.0, 42,
        num_servers=2, num_pairs=2, trace_sample_rate=1.0,
    )
    # One start_request per request; the request path then performs a
    # bounded number of `payload.get("trace")` misses and None checks
    # (client, switch x2, egress, server queue, media, return path).
    calls_per_request = 1
    gets_per_request = 16

    def measured() -> dict:
        base = min((untraced.execute() for _ in range(3)),
                   key=lambda r: r.wall_clock_s)
        full = min((traced.execute() for _ in range(3)),
                   key=lambda r: r.wall_clock_s)
        requests = base.metrics.read_total.count + base.metrics.write_total.count

        tracer = NullTracer()
        payload: dict = {}
        reps = 200_000
        t0 = time.perf_counter()
        for i in range(reps):
            tracer.start_request(i, "read", "bench", 0.0)
        call_s = (time.perf_counter() - t0) / reps
        t0 = time.perf_counter()
        for _ in range(reps):
            payload.get("trace")
        get_s = (time.perf_counter() - t0) / reps

        instrumentation_s = requests * (
            calls_per_request * call_s + gets_per_request * get_s
        )
        return dict(
            base_s=base.wall_clock_s, full_s=full.wall_clock_s,
            instr_s=instrumentation_s,
            ratio=instrumentation_s / base.wall_clock_s,
        )

    out = run_once(benchmark, measured)
    print()
    print(f"untraced run {out['base_s']:.3f}s, fully traced "
          f"{out['full_s']:.3f}s; NullTracer instrumentation cost "
          f"{out['instr_s'] * 1e3:.2f}ms ({out['ratio']:.3%} of untraced run)")
    assert out["ratio"] < 0.02


def test_run_cache_dedup_avoids_rework(benchmark):
    """The shared cache makes repeated spec lists nearly free."""
    cache = RunCache()
    runner = ParallelRunner(jobs=1, cache=cache)
    spec = RunSpec.create(
        SystemType.VDC, ycsb(0.5), 200, 1500.0, 42,
        num_servers=2, num_pairs=2,
    )

    def first_then_hot() -> float:
        runner.run_specs([spec] * 4)  # one execution, three dedup hits
        t0 = time.perf_counter()
        runner.run_specs([spec] * 4)  # pure cache hits
        return time.perf_counter() - t0

    hot_s = run_once(benchmark, first_then_hot)
    print()
    print(f"hot cache re-read of 4 specs: {hot_s * 1e6:.0f} us")
    assert hot_s < 0.1
