"""Figure 13: tail latency across the BenchBase workloads (Table 2)."""

from conftest import BENCH_RATE, BENCH_REQUESTS, BENCH_SEED, run_once

from repro.experiments.figures import fig13_workloads_tail


def test_fig13_workloads_tail(benchmark):
    result = run_once(
        benchmark, fig13_workloads_tail,
        requests=BENCH_REQUESTS, rate=BENCH_RATE, seed=BENCH_SEED,
    )
    print()
    print(result.to_table())
    by_name = {row["workload"]: row for row in result.rows}
    # Write-heavy workloads (TPC-C, Twitter) see the big read-tail wins;
    # read-dominant TPC-H's benefit is coordination-only (smaller).
    for name in ("tpcc",):
        row = by_name[name]
        assert (
            row["RackBlox read P99.9"] < row["VDC read P99.9"]
        ), row
    # RackBlox never loses on any workload's reads.
    for row in result.rows:
        if row["VDC read P99.9"] is None:
            continue
        assert row["RackBlox read P99.9"] <= row["VDC read P99.9"] * 1.1, row
