"""Figure 20: P99.9 improvement of RackBlox over VDC per SSD/network pair."""

from conftest import BENCH_RATE, BENCH_SEED, run_once

from repro.experiments.figures import fig20_improvement_matrix


def test_fig20_improvement_matrix(benchmark):
    result = run_once(
        benchmark, fig20_improvement_matrix,
        requests=1500, rate=BENCH_RATE, seed=BENCH_SEED,
    )
    print()
    print(result.to_table())
    cells = {
        (row["ssd"], row["network"]): row["P99.9 improvement"]
        for row in result.rows
    }
    # RackBlox helps (or is tail-noise neutral) in every pairing; cells
    # where GC never lifts the tail above the network floor (Optane rows,
    # slow-network columns) hover around 1.0 with straggler noise of up
    # to +-40% at P99.9.
    for key, improvement in cells.items():
        assert improvement > 0.55, (key, improvement)
    # Somewhere in the matrix the improvement is a multi-x win.
    assert max(cells.values()) > 1.5
    # And that win sits where the device's GC tail dominates a fast
    # network -- not in the slow-network column (§4.5.3's pairing story).
    best = max(cells, key=cells.get)
    assert best[1] != "slow", cells
