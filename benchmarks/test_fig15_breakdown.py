"""Figure 15: latency breakdown with the Coord-I/O-only ablation."""

from conftest import BENCH_RATE, BENCH_REQUESTS, BENCH_SEED, run_once

from repro.experiments.figures import fig15_breakdown


def test_fig15_breakdown(benchmark):
    result = run_once(
        benchmark, fig15_breakdown,
        requests=BENCH_REQUESTS, rate=BENCH_RATE, seed=BENCH_SEED,
    )
    print()
    print(result.to_table())
    by_key = {(row["write_ratio"], row["system"]): row for row in result.rows}
    for ratio in ("20%", "50%", "80%"):
        vdc = by_key[(ratio, "VDC")]
        coord = by_key[(ratio, "RackBlox-Coord I/O")]
        full = by_key[(ratio, "RackBlox")]
        # Storage time is a component of the total.
        assert vdc["read storage P99.9"] <= vdc["read total P99.9"]
        # Coordinated GC (the difference between Coord I/O and full
        # RackBlox) is where the big read win comes from.
        assert full["read total P99.9"] < coord["read total P99.9"], ratio
        # Coord I/O alone is seed-noise neutral in our network model
        # (+-10% either way at the tail; see docs/simulation-model.md) --
        # assert it stays inside that band rather than claiming the
        # paper's small consistent win.
        assert coord["read total P99"] <= vdc["read total P99"] * 1.3, ratio
