"""Figure 10: P99 end-to-end latency (same sweep, lower tail)."""

from conftest import BENCH_RATE, BENCH_REQUESTS, BENCH_SEED, run_once

from repro.experiments.figures import fig10_p99_latency


def test_fig10_p99_latency(benchmark):
    result = run_once(
        benchmark, fig10_p99_latency,
        requests=BENCH_REQUESTS, rate=BENCH_RATE, seed=BENCH_SEED,
    )
    print()
    print(result.to_table())
    # Shape: benefits persist at the lower tail under GC pressure.
    heavy = [r for r in result.rows if r["write_ratio"] in ("40%", "60%", "80%")]
    improvements = [
        row["VDC read P99"] / row["RackBlox read P99"] for row in heavy
    ]
    assert max(improvements) > 1.5, improvements
