"""§3.7: validate the SSD emulator against first-principles expectations."""

from conftest import run_once

from repro.experiments.validation import validate_device, validation_table
from repro.flash.timing import INTEL_DC, OPTANE, PSSD


def test_validation_emulator(benchmark):
    rows = run_once(benchmark, validate_device, PSSD)
    print()
    print(validation_table(rows))
    # Latency and throughput checks must land within 10% of the analytic
    # value; write amplification within the (looser) greedy-GC band.
    for row in rows:
        if "amplification" in row.check:
            assert 0.5 * row.expected <= row.measured <= 2.0 * row.expected, row
        else:
            assert row.ok, row


def test_validation_all_profiles(benchmark):
    def all_profiles():
        return {p.name: validate_device(p) for p in (OPTANE, INTEL_DC, PSSD)}

    results = run_once(benchmark, all_profiles)
    for name, rows in results.items():
        for row in rows:
            if "amplification" not in row.check:
                assert row.ok, (name, row)
