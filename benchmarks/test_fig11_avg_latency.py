"""Figure 11: average latency -- RackBlox must not hurt the mean."""

from conftest import BENCH_RATE, BENCH_REQUESTS, BENCH_SEED, run_once

from repro.experiments.figures import fig11_avg_latency


def test_fig11_avg_latency(benchmark):
    result = run_once(
        benchmark, fig11_avg_latency,
        requests=BENCH_REQUESTS, rate=BENCH_RATE, seed=BENCH_SEED,
    )
    print()
    print(result.to_table())
    for row in result.rows:
        vdc = row["VDC read avg"]
        rb = row["RackBlox read avg"]
        if vdc is None or rb is None:
            continue
        # Never worse than the baseline (paper: "does not negatively
        # affect the average latency").
        assert rb <= vdc * 1.1, row
