"""Figure 23: rack-scale wear balance with the global balancer."""

from conftest import run_once

from repro.experiments.figures import fig23_rack_wear


def test_fig23_rack_wear(benchmark):
    result = run_once(benchmark, fig23_rack_wear, days=1095)
    print()
    print(result.to_table())
    rows = {row["policy"]: row for row in result.rows}
    two_level = rows["RackBlox (two-level)"]
    noswap = rows["No Swap"]
    assert two_level["global swaps"] > 0
    # The global balancer reduces rack-level wear variance despite its
    # relaxed 8-week cadence (lower is better).
    assert two_level["rack wear variance"] < noswap["rack wear variance"]
    assert two_level["rack lambda"] < noswap["rack lambda"]
