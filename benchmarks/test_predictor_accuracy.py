"""§3.4: the sliding-window return-latency predictor's accuracy."""

from conftest import run_once

from repro.experiments.figures import predictor_accuracy


def test_predictor_accuracy(benchmark):
    result = run_once(benchmark, predictor_accuracy, samples=5000)
    print()
    print(result.to_table())
    by_net = {row["network"]: row for row in result.rows}
    # On the fast fabric the paper's "within 25 us most of the time"
    # claim holds for the median; our per-packet jitter is heavier than
    # the paper's traces, so P95 is looser (see EXPERIMENTS.md).
    assert by_net["fast"]["median abs error (us)"] < 25.0
    # Errors scale with the regime's base latency, not explode.
    assert (
        by_net["slow"]["median rel error (%)"]
        < by_net["slow"]["median abs error (us)"]
    )
