"""Figure 21: software- vs hardware-isolated vSSDs."""

from conftest import BENCH_RATE, BENCH_REQUESTS, BENCH_SEED, run_once

from repro.experiments.figures import fig21_isolation


def test_fig21_isolation(benchmark):
    result = run_once(
        benchmark, fig21_isolation,
        requests=BENCH_REQUESTS, rate=BENCH_RATE, seed=BENCH_SEED,
    )
    print()
    print(result.to_table())
    rows = {row["isolation"]: row for row in result.rows}
    # RackBlox improves the read tail for both isolation modes.
    assert rows["HW-isolated"]["speedup"] > 1.0
    assert rows["SW-isolated"]["speedup"] > 1.0
    # Hardware isolation yields the lower absolute tail under RackBlox:
    # no collocated tenant interferes on the channels.  (Relative speedup
    # can be *larger* for SW-isolated because its baseline suffers more;
    # see EXPERIMENTS.md.)
    assert (
        rows["HW-isolated"]["RackBlox read P99.9"]
        <= rows["SW-isolated"]["RackBlox read P99.9"]
    )
