"""Soak-style bench: bursty traffic, SLO compliance, VDC vs RackBlox.

Ties the auxiliary machinery together the way an operator would use it:
MMPP (calm/burst) arrivals drive both systems, and an SLO monitor scores
read-latency compliance.  The paper's thesis restated as an SLO: under
the same bursty load, RackBlox keeps a read-latency objective that VDC
breaks.
"""

from conftest import BENCH_SEED, run_once

from repro.cluster import Client, Rack, RackConfig, SystemType
from repro.experiments.runner import run_until
from repro.metrics import ExperimentMetrics, SloMonitor, SloTarget
from repro.sim import AllOf
from repro.sim.core import MSEC
from repro.workloads import MmppArrivals, ycsb
from repro.workloads.arrival import BurstyWorkloadGenerator

READ_SLO = SloTarget("read", latency_us=8_000.0, quantile=99.0)


def run_bursty_system(system: SystemType, requests_per_pair: int = 2000):
    config = RackConfig(system=system, num_servers=4, num_pairs=4,
                        seed=BENCH_SEED)
    rack = Rack(config)
    rack.precondition()
    metrics = ExperimentMetrics()
    processes = []
    for idx, pair in enumerate(rack.pairs):
        arrivals = MmppArrivals(
            calm_iops=900.0, burst_iops=6_000.0,
            mean_calm_us=150 * MSEC, mean_burst_us=30 * MSEC,
            rng=rack.rng.stream(f"mmpp-{idx}"),
        )
        generator = BurstyWorkloadGenerator(
            ycsb(0.5), key_space=rack.working_set_pages(pair),
            arrivals=arrivals, rng=rack.rng.stream(f"client-{idx}"),
        )
        client = Client(rack, f"client-{idx}", pair, generator, metrics)
        processes.append(rack.sim.spawn(client.run(requests_per_pair)))
    run_until(rack.sim, AllOf(rack.sim, processes))
    slo = SloMonitor([READ_SLO])
    for value in metrics.read_total.values:
        slo.record("read", value)
    return metrics, slo


def test_soak_slo(benchmark):
    def both():
        return {
            "vdc": run_bursty_system(SystemType.VDC),
            "rackblox": run_bursty_system(SystemType.RACKBLOX),
        }

    results = run_once(benchmark, both)
    print()
    for name, (metrics, slo) in results.items():
        compliance = 100.0 * slo.compliance(READ_SLO)
        print(f"{name:10s} read p99={metrics.read_total.p99():8.0f}us "
              f"p999={metrics.read_total.p999():8.0f}us "
              f"SLO({READ_SLO.latency_us:.0f}us@P99) compliance={compliance:.2f}% "
              f"worst burst={slo.worst_burst['read']}")
    vdc_metrics, vdc_slo = results["vdc"]
    rb_metrics, rb_slo = results["rackblox"]
    # RackBlox keeps more of the objective under the same bursty load.
    assert rb_slo.compliance(READ_SLO) >= vdc_slo.compliance(READ_SLO)
    assert rb_metrics.read_total.p99() < vdc_metrics.read_total.p99()
    # Sustained violation runs (what pages an operator) shrink too.
    assert rb_slo.worst_burst["read"] <= vdc_slo.worst_burst["read"]
