"""Figure 17: sensitivity to the storage I/O scheduler."""

from conftest import BENCH_RATE, BENCH_REQUESTS, BENCH_SEED, run_once

from repro.experiments.figures import fig17_storage_schedulers


def test_fig17_storage_schedulers(benchmark):
    result = run_once(
        benchmark, fig17_storage_schedulers,
        requests=BENCH_REQUESTS, rate=BENCH_RATE, seed=BENCH_SEED,
    )
    print()
    print(result.to_table())
    speedups = {row["scheduler"]: row["speedup"] for row in result.rows}
    # Coordination wins under every scheduler (paper: always outperforms
    # its baseline), and plain FIFO -- with no latency machinery of its
    # own -- gains at least as much as Kyber.
    for scheduler, speedup in speedups.items():
        assert speedup > 1.0, (scheduler, speedup)
    assert speedups["fifo"] >= speedups["kyber"] * 0.9
