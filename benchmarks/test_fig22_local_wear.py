"""Figure 22: per-server wear balance with the local balancer."""

from conftest import run_once

from repro.experiments.figures import fig22_local_wear


def test_fig22_local_wear(benchmark):
    result = run_once(benchmark, fig22_local_wear, days=1095)
    print()
    print(result.to_table())
    rows = {row["policy"]: row for row in result.rows}
    noswap = rows["No Swap"]
    balanced = rows["RackBlox (local)"]
    assert balanced["swaps"] > 0
    # The local balancer keeps servers far closer to uniform wear.
    assert (
        balanced["mean server lambda"] < noswap["mean server lambda"] * 0.8
    )
    assert balanced["worst server lambda"] < noswap["worst server lambda"]
