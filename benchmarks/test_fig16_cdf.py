"""Figure 16: cumulative distribution of read latency."""

from conftest import BENCH_RATE, BENCH_REQUESTS, BENCH_SEED, run_once

from repro.experiments.figures import fig16_read_cdf


def test_fig16_read_cdf(benchmark):
    result = run_once(
        benchmark, fig16_read_cdf,
        requests=BENCH_REQUESTS, rate=BENCH_RATE, seed=BENCH_SEED,
    )
    print()
    print(result.to_table())
    # Shape: the curves agree at the median (network/device dominated)
    # and separate in the tail, where VDC's GC knee appears.
    p50 = next(row for row in result.rows if row["percentile"] == "P50.0")
    p999 = next(row for row in result.rows if row["percentile"] == "P99.9")
    assert p50["RackBlox"] <= p50["VDC"] * 1.3
    assert p999["RackBlox"] < p999["VDC"], p999
    # Each system's CDF is monotone in the quantile.
    for system in ("VDC", "RackBlox"):
        series = [row[system] for row in result.rows]
        assert series == sorted(series)
