"""Ablation: the return-latency predictor's window size (§3.4).

The paper picks 100 packets as "small enough to quickly detect changes
... but large enough to smoothen outlier requests".  A tiny window chases
stragglers; a huge window lags congestion onset.
"""

import random

from conftest import run_once

from repro.net.latency import MEDIUM_NETWORK, LatencyProcess
from repro.server.predictor import ReturnLatencyPredictor


def sweep_window(windows=(5, 100, 2000), samples=6000, seed=17):
    rows = []
    for window in windows:
        process = LatencyProcess(MEDIUM_NETWORK, random.Random(seed))
        predictor = ReturnLatencyPredictor(window=window)
        now, errors = 0.0, []
        for _ in range(samples):
            now += 200.0
            incoming = process.sample(now)
            if predictor.window_fill(1, "read") >= min(window, 100):
                prediction = predictor.predict(1, "read")
                actual = process.sample(now)
                errors.append(abs(prediction - actual))
            predictor.observe(1, "read", incoming)
        errors.sort()
        rows.append({
            "window": window,
            "median_error_us": errors[len(errors) // 2],
            "p95_error_us": errors[int(len(errors) * 0.95)],
        })
    return rows


def test_ablation_predictor_window(benchmark):
    rows = run_once(benchmark, sweep_window)
    print()
    for row in rows:
        print(row)
    by_window = {row["window"]: row for row in rows}
    # The paper's 100-packet window is the balanced choice: it tracks the
    # median far better than the lagging huge window, and smooths the
    # error tail better than the straggler-chasing tiny window.
    assert (
        by_window[100]["median_error_us"]
        < by_window[2000]["median_error_us"] * 0.6
    )
    assert by_window[100]["p95_error_us"] <= by_window[5]["p95_error_us"]
