"""Codec micro-benchmarks: the wire path without sockets.

Two guards:

* **large-stream decode** -- :class:`FrameDecoder` must digest a
  multi-megabyte burst in one ``feed`` (and byte-dribbled) in time that
  only an amortized-compaction buffer can deliver.  The pre-PR-6 scheme
  memmoved the remainder of the buffer once per frame, which on this
  stream is quadratic work (minutes, not milliseconds) -- the wall-time
  ceiling here fails loudly if that ever regresses;
* **binary beats JSON** -- one encode+decode round trip of the hot
  request shape must be cheaper in the v2 binary codec than in JSON,
  and the binary frame itself must be smaller.  Measured over enough
  iterations to drown out scheduler noise.
"""

import time

from repro.service.protocol import (
    BIN_CODEC,
    FrameDecoder,
    FrameSplitter,
    encode_frame,
)

#: Frames in the large-stream guard.  ~37 bytes/frame JSON keeps the
#: stream a few MB: big enough that a per-frame memmove scheme takes
#: minutes, small enough that the amortized one finishes in well under
#: a second on any host.
STREAM_FRAMES = 60_000
#: Generous wall ceiling for decoding the stream once (seconds).  The
#: quadratic scheme exceeds this by two orders of magnitude.
STREAM_CEILING_S = 5.0


def _stream() -> bytes:
    frames = []
    for i in range(STREAM_FRAMES):
        frames.append(encode_frame(
            {"type": "read", "pair": i % 8, "lpn": i % 4096, "id": i}
        ))
    return b"".join(frames)


def test_large_stream_single_feed_is_amortized(benchmark):
    stream = _stream()

    def decode() -> int:
        decoder = FrameDecoder()
        return len(decoder.feed(stream))

    t0 = time.perf_counter()
    decoded = benchmark.pedantic(decode, rounds=1, iterations=1)
    elapsed = time.perf_counter() - t0
    assert decoded == STREAM_FRAMES
    mb = len(stream) / 1e6
    print(f"\nsingle-feed decode: {mb:.1f} MB, {STREAM_FRAMES} frames "
          f"in {elapsed:.3f}s ({mb / elapsed:.0f} MB/s)")
    assert elapsed < STREAM_CEILING_S, (
        f"{elapsed:.1f}s to decode {mb:.1f} MB -- the receive buffer has "
        f"gone quadratic again"
    )


def test_large_stream_chunked_feed_is_amortized():
    stream = _stream()
    decoder = FrameDecoder()
    decoded = 0
    t0 = time.perf_counter()
    for at in range(0, len(stream), 3_000):
        decoded += len(decoder.feed(stream[at:at + 3_000]))
    elapsed = time.perf_counter() - t0
    assert decoded == STREAM_FRAMES
    assert elapsed < STREAM_CEILING_S


def test_splitter_keeps_up_with_the_decoder():
    stream = _stream()
    splitter = FrameSplitter()
    t0 = time.perf_counter()
    split = len(splitter.feed(stream))
    elapsed = time.perf_counter() - t0
    assert split == STREAM_FRAMES
    assert elapsed < STREAM_CEILING_S


def test_binary_round_trip_beats_json(benchmark):
    request = {"type": "read", "pair": 3, "lpn": 1024, "id": 123456,
               "client": "bench"}
    bin_frame = BIN_CODEC.encode(request)
    json_frame = encode_frame(request)
    assert len(bin_frame) < len(json_frame), (
        f"binary frame ({len(bin_frame)}B) should undercut JSON "
        f"({len(json_frame)}B)"
    )
    iterations = 20_000

    def round_trips() -> float:
        decoder = FrameDecoder()
        t0 = time.perf_counter()
        for _ in range(iterations):
            decoder.feed(BIN_CODEC.encode(request))
        t_bin = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(iterations):
            decoder.feed(encode_frame(request))
        t_json = time.perf_counter() - t0
        return t_bin / t_json

    ratio = benchmark.pedantic(round_trips, rounds=1, iterations=1)
    print(f"\nbin/json round-trip time ratio: {ratio:.2f} "
          f"(bin {len(bin_frame)}B vs json {len(json_frame)}B)")
    # A soft-but-real guard: the binary codec exists to be cheaper.
    # Anything above parity means the fast path stopped being one.
    assert ratio < 1.0, (
        f"binary round trip is {ratio:.2f}x JSON -- the fast path "
        f"regressed past parity"
    )
