"""Scale-out benchmark: 4 process-mode rack shards vs one rack.

The sharded acceptance run: the same closed-loop load is driven against
a single-rack ``serve`` and a ``--racks 4 --shard-mode process`` fleet
(one interpreter per rack behind the frame-relay proxy).  The functional
bar always holds -- zero errors, schema-valid sharded stats, all four
shards exercised; the >= 3x throughput bar only engages on hosts with
enough cores to actually run four simulators in parallel (each backend
plus the proxy and the loadgen want a core; a single-core CI box runs
the same bytes but measures only context switching).
"""

import asyncio
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.service import schema
from repro.service.loadgen import run_loadgen

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Cores needed before the wall-clock scaling assertion is meaningful:
#: 4 backends + proxy + loadgen.
SCALING_CORE_FLOOR = 6
SCALING_FLOOR_X = 3.0

RACKS = 4
PAIRS_PER_RACK = 2
CLIENTS = 16
PIPELINE = 6
REQUESTS_PER_CLIENT = 250


def _spawn_serve(*extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--servers", "2", "--pairs", str(PAIRS_PER_RACK),
            "--queue-depth", "512", "--chunk-us", "8000", "--seed", "42",
            *extra_args,
        ],
        cwd=_REPO_ROOT, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + 120.0
    while True:
        line = proc.stdout.readline()
        assert line or time.monotonic() < deadline, "serve never announced"
        match = re.search(r"on 127\.0\.0\.1:(\d+)", line)
        if match:
            return proc, int(match.group(1))


def _stop_serve(proc):
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()


def _drive(port, pairs):
    return asyncio.run(run_loadgen(
        "127.0.0.1", port, mode="closed", clients=CLIENTS,
        requests_per_client=REQUESTS_PER_CLIENT, pipeline=PIPELINE,
        write_ratio=0.2, kind="raw", pairs=pairs, seed=7,
    ))


@pytest.fixture(scope="module")
def measured():
    single_proc, single_port = _spawn_serve()
    try:
        single = _drive(single_port, PAIRS_PER_RACK)
    finally:
        _stop_serve(single_proc)
    sharded_proc, sharded_port = _spawn_serve(
        "--racks", str(RACKS), "--shard-mode", "process",
    )
    try:
        sharded = _drive(sharded_port, RACKS * PAIRS_PER_RACK)
    finally:
        _stop_serve(sharded_proc)
    return single, sharded


def test_sharded_run_is_functionally_clean(measured):
    single, sharded = measured
    print()
    print(f"single rack : {single.throughput_rps:>10,.0f} req/s")
    print(f"{RACKS} rack shards: {sharded.throughput_rps:>10,.0f} req/s")
    for report in (single, sharded):
        assert report.errors == 0
        assert report.ok == CLIENTS * REQUESTS_PER_CLIENT
    stats = sharded.server_stats
    schema.validate_stats(stats)
    assert schema.is_sharded(stats)
    assert schema.shard_ids(stats) == list(range(RACKS))
    # Every shard simulated its slice of the keyspace-wide load.
    for shard_id, section in stats["shards"].items():
        assert section["bridge"]["submitted"] > 0, f"shard {shard_id} idle"
    assert not schema.is_sharded(single.server_stats)


def test_four_racks_scale_throughput(measured):
    cores = os.cpu_count() or 1
    if cores < SCALING_CORE_FLOOR:
        pytest.skip(
            f"{cores} cores < {SCALING_CORE_FLOOR}: four backend "
            "interpreters cannot run in parallel, the speedup would "
            "measure scheduling noise"
        )
    single, sharded = measured
    speedup = sharded.throughput_rps / single.throughput_rps
    print()
    print(f"scale-out speedup: {speedup:.2f}x "
          f"({single.throughput_rps:,.0f} -> "
          f"{sharded.throughput_rps:,.0f} req/s)")
    assert speedup >= SCALING_FLOOR_X, (
        f"{RACKS} racks reached only {speedup:.2f}x over one rack "
        f"(floor {SCALING_FLOOR_X}x)"
    )
