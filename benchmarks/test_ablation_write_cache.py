"""Ablation: DRAM write-cache sizing (§3.5.1).

The cache is why "writes are hardly affected by GC": a too-small cache
fills during GC bursts and write admission stalls, putting flash
latencies back on the write path.
"""

from conftest import BENCH_RATE, BENCH_SEED, run_once

from repro.cluster.config import RackConfig, SystemType
from repro.experiments.runner import run_rack_experiment
from repro.workloads import ycsb


def sweep_cache_size():
    rows = []
    for pages in (8, 128, 1024):
        config = RackConfig(
            system=SystemType.RACKBLOX,
            write_cache_pages=pages,
            seed=BENCH_SEED,
        )
        result = run_rack_experiment(
            config, ycsb(0.8), requests_per_pair=2000,
            rate_iops_per_pair=BENCH_RATE,
        )
        rows.append({
            "cache_pages": pages,
            "write_p999": result.metrics.write_total.p999(),
            "write_avg": result.metrics.write_total.mean(),
        })
    return rows


def test_ablation_write_cache(benchmark):
    rows = run_once(benchmark, sweep_cache_size)
    print()
    for row in rows:
        print(row)
    by_size = {row["cache_pages"]: row for row in rows}
    # A starved cache pushes the write tail up by a large factor.
    assert by_size[8]["write_p999"] > by_size[1024]["write_p999"] * 1.5
    # Average write latency degrades too when admission stalls dominate.
    assert by_size[8]["write_avg"] > by_size[1024]["write_avg"]
