"""Load-aware read routing acceptance: p2c vs hash under a hot key.

The adversarial-but-realistic scenario the selector exists for: a
2-rack in-process fleet where the rack owning the zipf-hot pair is
built on a device ~15x slower at reads (one GC-stalled or worn-out
rack), driven by the seeded zipfian loadgen (``--key-dist zipf``).
Under strict hash placement every hot read eats the slow rack's
latency; power-of-two-choices should divert the hot pair's reads to
its idle cross-rack replica and collapse read p99.

Latencies compare in **simulated** microseconds
(``stats["metrics"]["read_p99_us"]``, the router's aggregate), so the
headline is host-independent -- but the selector's freshness window
rides wall-clock syncs, so the >= 25% improvement gate still arms only
at ``GATE_CORES`` cores (a saturated single core starves the sync loop
and p2c honestly degrades to hash).  The functional bar -- clean runs,
the policy demonstrably engaged, schema-valid routing stats -- holds
everywhere.  Results land in ``BENCH_routing.json`` (override:
``BENCH_ROUTING_OUT``).
"""

import asyncio
import dataclasses
import json
import os

import pytest

from repro.cluster.config import RackConfig, SystemType
from repro.service import schema
from repro.service.admission import AdmissionController
from repro.service.bridge import SimTimeBridge
from repro.service.loadgen import run_loadgen
from repro.service.router import (
    ShardedRackService,
    ShardRouter,
    build_shard_configs,
)
from repro.service.selector import POLICY_HASH, POLICY_P2C
from repro.service.shard import HashRing, RackShard

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_OUT_PATH = os.environ.get(
    "BENCH_ROUTING_OUT", os.path.join(_REPO_ROOT, "BENCH_routing.json"))

CORES = os.cpu_count() or 1
#: The loadgen, both rack pumps, and the sync loop share the host; below
#: this the freshness window starves and p2c legitimately falls back.
GATE_CORES = 2
#: p2c must cut read p99 to at most this fraction of hash's.
IMPROVEMENT_CEILING = 0.75

RACKS = 2
PAIRS_PER_RACK = 2
#: How much slower the hot-pair owner's device reads are.
SLOW_X = 15.0
#: The rack the zipf-hot ``pair:0`` hashes to (seeded ring, so this is
#: a constant of the configuration, not a guess).
SLOW_NODE = HashRing(range(RACKS)).node_for("pair:0")

CLIENTS = 8
REQUESTS_PER_CLIENT = 150
PIPELINE = 4
ZIPF_S = 1.3

_rows = {}


def _build_service(read_policy):
    base = RackConfig(system=SystemType("rackblox"), num_servers=2,
                      num_pairs=PAIRS_PER_RACK, seed=42)
    shards = []
    for index, config in enumerate(build_shard_configs(base, RACKS)):
        if index == SLOW_NODE:
            profile = config.device_profile
            config = dataclasses.replace(config, device_profile=(
                dataclasses.replace(profile, name=f"{profile.name}-slow",
                                    read_us=profile.read_us * SLOW_X)
            ))
        bridge = SimTimeBridge(config, precondition=False, chunk_us=2000.0)
        shards.append(RackShard(index, bridge,
                                AdmissionController(max_queue_depth=512)))
    router = ShardRouter(shards, read_policy=read_policy)
    return ShardedRackService(router, port=0)


async def _measure(read_policy):
    service = _build_service(read_policy)
    await service.start()
    try:
        report = await run_loadgen(
            "127.0.0.1", service.port, mode="closed", clients=CLIENTS,
            requests_per_client=REQUESTS_PER_CLIENT, pipeline=PIPELINE,
            write_ratio=0.0, kind="raw", pairs=RACKS * PAIRS_PER_RACK,
            seed=7, key_dist="zipf", zipf_s=ZIPF_S,
        )
    finally:
        await service.stop()
    return report


@pytest.fixture(scope="module")
def measured():
    hash_report = asyncio.run(_measure(POLICY_HASH))
    p2c_report = asyncio.run(_measure(POLICY_P2C))
    return hash_report, p2c_report


def test_both_runs_are_functionally_clean(measured):
    hash_report, p2c_report = measured
    for report in measured:
        assert report.errors == 0 and report.busy == 0
        assert report.ok == CLIENTS * REQUESTS_PER_CLIENT
        assert report.key_dist == "zipf"
        schema.validate_stats(report.server_stats)
    # Hash mode carries no routing section; p2c reports one, and the
    # policy demonstrably engaged on this host.
    assert "routing" not in hash_report.server_stats
    routing = p2c_report.server_stats["routing"]
    assert routing["policy_p2c"] == 1.0
    assert routing["decisions"] == float(CLIENTS * REQUESTS_PER_CLIENT)
    assert routing["p2c_picks"] > 0, "selector never scored a read"
    assert routing["p2c_diverted"] > 0, (
        "no read left the slow hash owner -- the whole point"
    )
    assert set(routing["replicas"]) == {str(n) for n in range(RACKS)}


def test_emit_artifact_and_gate(measured):
    hash_report, p2c_report = measured
    hash_p99 = hash_report.server_stats["metrics"]["read_p99_us"]
    p2c_p99 = p2c_report.server_stats["metrics"]["read_p99_us"]
    assert hash_p99 > 0 and p2c_p99 > 0
    ratio = p2c_p99 / hash_p99
    routing = p2c_report.server_stats["routing"]
    gated = CORES >= GATE_CORES
    artifact = {
        "bench": "routing-policy-p2c-vs-hash",
        "cores": CORES,
        "racks": RACKS,
        "pairs_per_rack": PAIRS_PER_RACK,
        "slow_node": SLOW_NODE,
        "slow_read_x": SLOW_X,
        "zipf_s": ZIPF_S,
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "read_p99_us": {
            "hash": round(hash_p99, 1),
            "p2c": round(p2c_p99, 1),
        },
        "p2c_over_hash": round(ratio, 3),
        "p2c_counters": {
            "decisions": routing["decisions"],
            "p2c_picks": routing["p2c_picks"],
            "p2c_diverted": routing["p2c_diverted"],
            "fallbacks": routing["fallbacks"],
        },
        "gate": {
            "ceiling": IMPROVEMENT_CEILING,
            "enforced": gated,
            "reason": (None if gated else
                       f"host has {CORES} cores < {GATE_CORES}"),
        },
    }
    with open(_OUT_PATH, "w") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {_OUT_PATH}")
    print(f"read p99 (sim us): hash {hash_p99:,.0f} -> p2c {p2c_p99:,.0f} "
          f"({ratio:.2f}x, gate {'ENFORCED' if gated else 'waived'}: "
          f"<= {IMPROVEMENT_CEILING}x)")
    if gated:
        assert ratio <= IMPROVEMENT_CEILING, (
            f"p2c read p99 is {ratio:.2f}x hash's ({p2c_p99:,.0f} vs "
            f"{hash_p99:,.0f} sim us) -- the selector must cut at least "
            f"{1 - IMPROVEMENT_CEILING:.0%} off the hot-rack tail"
        )
    else:
        pytest.skip(f"improvement gate waived: {CORES} core(s) < "
                    f"{GATE_CORES} (artifact still written)")
