"""Ablation: the soft/hard GC threshold gap (§3.5.1).

The soft threshold (35%) exists to give the switch room to *delay* GC
until the replica finishes.  Shrinking the gap toward the hard threshold
(25%) removes that room: soft requests arrive when GC can barely wait, so
more GCs overlap between replicas and redirection loses coverage.
"""

from conftest import BENCH_RATE, BENCH_SEED, run_once

from repro.cluster.config import RackConfig, SystemType
from repro.experiments.runner import run_rack_experiment
from repro.workloads import ycsb


def sweep_soft_threshold():
    rows = []
    for soft in (0.27, 0.35, 0.45):
        config = RackConfig(
            system=SystemType.RACKBLOX,
            soft_threshold=soft,
            gc_threshold=0.25,
            seed=BENCH_SEED,
        )
        result = run_rack_experiment(
            config, ycsb(0.6), requests_per_pair=2000,
            rate_iops_per_pair=BENCH_RATE,
        )
        rows.append({
            "soft_threshold": soft,
            "read_p999": result.metrics.read_total.p999(),
            "gc_delayed": result.switch_counters["gc_delayed"],
            "gc_accepted": result.switch_counters["gc_accepted"],
            "redirects": result.redirects,
        })
    return rows


def test_ablation_gc_thresholds(benchmark):
    rows = run_once(benchmark, sweep_soft_threshold)
    print()
    for row in rows:
        print(row)
    # Every configuration exercises the admission machinery.
    assert all(row["gc_accepted"] > 0 for row in rows)
    # A wider soft/hard gap gives the switch at least as much room to
    # delay overlapping GC.
    delays = {row["soft_threshold"]: row["gc_delayed"] for row in rows}
    assert delays[0.45] >= delays[0.27]
