"""Figure 18: sensitivity to the network scheduling policy."""

from conftest import BENCH_RATE, BENCH_REQUESTS, BENCH_SEED, run_once

from repro.experiments.figures import fig18_network_schedulers


def test_fig18_network_schedulers(benchmark):
    result = run_once(
        benchmark, fig18_network_schedulers,
        requests=BENCH_REQUESTS, rate=BENCH_RATE, seed=BENCH_SEED,
    )
    print()
    print(result.to_table())
    # Coordination benefits every underlying network scheduler.
    for row in result.rows:
        assert row["speedup"] > 1.0, row
