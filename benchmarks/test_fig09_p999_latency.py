"""Figure 9: P99.9 end-to-end latency, YCSB write-ratio sweep."""

from conftest import BENCH_RATE, BENCH_REQUESTS, BENCH_SEED, run_once

from repro.experiments.figures import fig9_p999_latency


def test_fig09_p999_latency(benchmark):
    result = run_once(
        benchmark, fig9_p999_latency,
        requests=BENCH_REQUESTS, rate=BENCH_RATE, seed=BENCH_SEED,
    )
    print()
    print(result.to_table())
    # Shape: at every write ratio with GC pressure (>= 40%), RackBlox's
    # read tail beats VDC's, and never loses anywhere.
    for row in result.rows:
        vdc = row["VDC read P99.9"]
        rb = row["RackBlox read P99.9"]
        if vdc is None or rb is None:
            continue
        assert rb <= vdc * 1.05
    heavy = [
        row for row in result.rows
        if row["write_ratio"] in ("40%", "60%", "80%")
    ]
    improvements = [
        row["VDC read P99.9"] / row["RackBlox read P99.9"] for row in heavy
    ]
    assert max(improvements) > 2.0, (
        f"expected a multi-x read-tail win under GC pressure, got {improvements}"
    )
