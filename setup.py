"""Legacy setup shim: the offline environment lacks the ``wheel`` package,
so editable installs must go through ``--no-use-pep517``."""

from setuptools import setup

setup()
